package runner

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/search"
)

// TestDonorRecordingAndApplyTransfer: running a batch through WithCache
// populates the donor index; a later factory on the same instance pair
// warm-starts from it, and the donor key skews the receiving factory's
// fingerprint (and therefore its cache key).
func TestDonorRecordingAndApplyTransfer(t *testing.T) {
	app, arch := testInstance(t)
	f := testFactory(t, app, arch)
	cache := NewResultCache(64, 0)
	fn := mustWithCache(t, CacheConfig{Cache: cache, Factory: f})

	donor, err := fn(context.Background(), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cache.DonorCount() != 1 {
		t.Fatalf("donor count = %d, want 1", cache.DonorCount())
	}
	key, got, ok := cache.Donor(app.Digest(), arch.Digest())
	if !ok || key == "" || got.Cost != donor.Cost {
		t.Fatalf("Donor() = %q, %+v, %v", key, got, ok)
	}
	// The donor copy is isolated from the index.
	got.Best.Assign[0].Res = 99
	_, again, _ := cache.Donor(app.Digest(), arch.Digest())
	if again.Best.Assign[0].Res == 99 {
		t.Fatal("donor index returned aliased mapping state")
	}

	warm := testFactory(t, app, arch)
	coldFP, _ := warm.Fingerprint()
	if !ApplyTransfer(warm, cache) {
		t.Fatal("ApplyTransfer found no donor")
	}
	warmFP, _ := warm.Fingerprint()
	if warmFP == coldFP {
		t.Fatal("warm start did not skew the fingerprint")
	}
	if !strings.Contains(warmFP, key) {
		t.Fatalf("fingerprint %q does not carry donor key %q", warmFP, key)
	}
	// The warm run reports its donor in the outcome telemetry, and the
	// aggregate folds it.
	wfn := mustWithCache(t, CacheConfig{Cache: cache, Factory: warm})
	agg, err := Run(context.Background(), app, Options{Runs: 2, Workers: 2, BaseSeed: 40}, wfn)
	if err != nil {
		t.Fatal(err)
	}
	if agg.TransferRuns != 2 || agg.TransferKey != key || agg.TransferCost != donor.Cost {
		t.Fatalf("aggregate transfer telemetry %d/%q/%v, want 2/%q/%v",
			agg.TransferRuns, agg.TransferKey, agg.TransferCost, key, donor.Cost)
	}
	// A warm incumbent can only help: no warm run ends worse than the
	// donor it started from.
	if agg.BestCost > donor.Cost {
		t.Fatalf("warm best %v worse than its own donor %v", agg.BestCost, donor.Cost)
	}
}

// TestDonorIndexKeepsMinCostOrderIndependent: the retained donor is the
// cost minimum with lexicographic key tie-break, whatever the offer
// order — the property that makes transfer worker-count independent.
func TestDonorIndexKeepsMinCostOrderIndependent(t *testing.T) {
	mk := func(cost float64) *Outcome {
		return &Outcome{Best: &sched.Mapping{Assign: []sched.Placement{{}}}, HasCost: true, Cost: cost}
	}
	offers := []struct {
		key  string
		cost float64
	}{{"cc", 5}, {"aa", 3}, {"bb", 3}, {"dd", 9}}
	perm := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	for _, p := range perm {
		rc := NewResultCache(8, 0)
		for _, i := range p {
			rc.offerDonor("app", "arch", offers[i].key, mk(offers[i].cost))
		}
		key, out, ok := rc.Donor("app", "arch")
		if !ok || key != "aa" || out.Cost != 3 {
			t.Fatalf("order %v retained %q/%v, want aa/3", p, key, out.Cost)
		}
	}
	// Ineligible outcomes never become donors.
	rc := NewResultCache(8, 0)
	rc.offerDonor("app", "arch", "x", &Outcome{HasCost: true, Cost: 1})          // no mapping
	rc.offerDonor("app", "arch", "y", &Outcome{Best: &sched.Mapping{}, Cost: 1}) // no cost
	rc.offerDonor("app", "arch", "", mk(1))                                      // no key
	if _, _, ok := rc.Donor("app", "arch"); ok {
		t.Fatal("ineligible outcome recorded as donor")
	}
}

// TestDonorTiePrefersColdOutcome: at equal cost a transfer-seeded
// outcome never displaces a cold donor (whatever its key), so repeated
// identical transfer submissions are a cache-warm fixed point; a warm
// outcome that strictly improves still takes over. Warm-vs-warm ties
// fall back to the key rule.
func TestDonorTiePrefersColdOutcome(t *testing.T) {
	mkWarm := func(cost float64) *Outcome {
		return &Outcome{
			Best: &sched.Mapping{Assign: []sched.Placement{{}}}, HasCost: true, Cost: cost,
			Sched: &search.SchedStats{TransferKey: "donorkey", TransferCost: cost},
		}
	}
	mkCold := func(cost float64) *Outcome {
		return &Outcome{Best: &sched.Mapping{Assign: []sched.Placement{{}}}, HasCost: true, Cost: cost}
	}
	rc := NewResultCache(8, 0)
	rc.offerDonor("app", "arch", "mm", mkCold(5))
	rc.offerDonor("app", "arch", "aa", mkWarm(5)) // equal cost, smaller key: still loses
	if key, _, _ := rc.Donor("app", "arch"); key != "mm" {
		t.Fatalf("equal-cost warm outcome displaced the cold donor (have %q)", key)
	}
	rc.offerDonor("app", "arch", "zz", mkWarm(4)) // strictly better: takes over
	if key, out, _ := rc.Donor("app", "arch"); key != "zz" || out.Cost != 4 {
		t.Fatalf("improving warm outcome did not become the donor (have %q)", key)
	}
	rc.offerDonor("app", "arch", "bb", mkWarm(4)) // warm-vs-warm tie: smaller key
	if key, _, _ := rc.Donor("app", "arch"); key != "bb" {
		t.Fatalf("warm-vs-warm tie ignored the key rule (have %q)", key)
	}
	// And the offer order cannot matter: cold-after-warm reclaims the tie.
	rc2 := NewResultCache(8, 0)
	rc2.offerDonor("app", "arch", "aa", mkWarm(5))
	rc2.offerDonor("app", "arch", "mm", mkCold(5))
	if key, _, _ := rc2.Donor("app", "arch"); key != "mm" {
		t.Fatalf("cold outcome offered second lost the equal-cost tie (have %q)", key)
	}
}

// TestApplyTransferNilAndMissing: a nil cache — including a typed-nil
// *ResultCache passed through the interface, the shape a server with
// caching disabled produces — and a missing donor both leave the
// factory untouched.
func TestApplyTransferNilAndMissing(t *testing.T) {
	app, arch := testInstance(t)
	f := testFactory(t, app, arch)
	before, _ := f.Fingerprint()

	var rc *ResultCache
	if ApplyTransfer(f, rc) { // typed-nil interface value
		t.Fatal("nil cache produced a donor")
	}
	if ApplyTransfer(f, nil) {
		t.Fatal("nil interface produced a donor")
	}
	if ApplyTransfer(f, NewResultCache(8, 0)) { // empty index
		t.Fatal("empty cache produced a donor")
	}
	after, _ := f.Fingerprint()
	if before != after {
		t.Fatal("failed transfer attempts mutated the fingerprint")
	}
}

// TestOutcomeCodecSchedSkew: outcomes with scheduler telemetry
// round-trip; pre-PR10 snapshots (no sched field) decode with nil; and
// outcomes without telemetry still encode byte-identically to the old
// wire form.
func TestOutcomeCodecSchedSkew(t *testing.T) {
	o := &Outcome{
		Best:    &sched.Mapping{Assign: []sched.Placement{{Res: 1}}},
		HasCost: true,
		Cost:    4.5,
		Sched: &search.SchedStats{
			Policy: search.SchedUCB,
			Slice:  8,
			Arms: []search.ArmStats{
				{Name: "sa", Slices: 3, Steps: 24, Reward: 1.25},
				{Name: "ga", Slices: 1, Steps: 8, Reward: 0.5},
			},
			TransferKey:  "feed",
			TransferCost: 9.75,
		},
	}
	b, err := EncodeOutcome(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sched == nil || back.Sched.Policy != search.SchedUCB ||
		len(back.Sched.Arms) != 2 || back.Sched.Arms[0] != o.Sched.Arms[0] ||
		back.Sched.TransferKey != "feed" || back.Sched.TransferCost != 9.75 {
		t.Fatalf("sched telemetry did not round-trip: %+v", back.Sched)
	}

	plain := &Outcome{Best: o.Best, HasCost: true, Cost: 4.5}
	pb, err := EncodeOutcome(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(pb), "sched") {
		t.Fatalf("sched-less outcome leaks a sched field: %s", pb)
	}
	old, err := DecodeOutcome(pb) // the pre-PR10 wire form
	if err != nil {
		t.Fatal(err)
	}
	if old.Sched != nil {
		t.Fatalf("old snapshot decoded with sched telemetry: %+v", old.Sched)
	}
}

// TestWarmRunCachesUnderDistinctKey: a warm-started run and its cold
// twin never share a cache entry — the donor key is part of the run
// key — so self-donation cannot corrupt the cache.
func TestWarmRunCachesUnderDistinctKey(t *testing.T) {
	app, arch := testInstance(t)
	cold := testFactory(t, app, arch)
	cache := NewResultCache(64, 0)
	fn := mustWithCache(t, CacheConfig{Cache: cache, Factory: cold})
	if _, err := fn(context.Background(), 0, 7); err != nil {
		t.Fatal(err)
	}

	warm := testFactory(t, app, arch)
	if !ApplyTransfer(warm, cache) {
		t.Fatal("no donor")
	}
	ck, _ := StrategyKey(cold, 0)(0, 7)
	wk, _ := StrategyKey(warm, 0)(0, 7)
	if ck == wk {
		t.Fatal("warm and cold runs share a cache key")
	}
	wfn := mustWithCache(t, CacheConfig{Cache: cache, Factory: warm})
	out, err := wfn(context.Background(), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.FromCache {
		t.Fatal("warm run answered from the cold run's cache entry")
	}
}

var _ TransferSource = (*ResultCache)(nil)
