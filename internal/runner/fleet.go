package runner

import (
	"strconv"

	"repro/internal/memo"
	"repro/internal/search"
)

// FleetKey derives a job batch's fleet routing key: the hex digest of
// (application digest, architecture digest, strategy/objective
// fingerprint, step budget, base seed, run count) — exactly the
// identity under which the batch's per-run results are memoized
// (StrategyKey), lifted from one run to the whole job. Routing a job
// by this key with consistent hashing therefore lands every
// resubmission of the same (app, arch, objective, strategy, seed,
// budget) job on the shard whose result cache is warm for it.
//
// ok is false for factories carrying function-typed hooks, which are
// uncacheable and so have no stable identity to route on; callers fall
// back to routing on the raw spec.
func FleetKey(f *search.Factory, maxSteps int, baseSeed int64, runs int) (key string, ok bool) {
	fp, ok := f.Fingerprint()
	if !ok {
		return "", false
	}
	k := memo.KeyOf(
		f.App().Digest(), f.Arch().Digest(), fp,
		strconv.Itoa(maxSteps),
		strconv.FormatInt(baseSeed, 10),
		strconv.Itoa(runs),
	)
	return k.Hex(), true
}
