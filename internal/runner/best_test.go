package runner

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
)

// TestAggregateBestObjectiveConsistent pins the satellite bugfix: when
// runs report scalarized costs, the aggregate's Best is the minimum-cost
// run even when a different run has the minimum makespan (e.g. under an
// area-weighted objective, where a slightly slower but much smaller
// solution wins).
func TestAggregateBestObjectiveConsistent(t *testing.T) {
	// Run 0: fast but expensive under the objective. Run 1: slower but
	// cheapest. Run 2: middling on both axes.
	costs := []float64{3.0, 1.0, 2.0}
	makespans := []model.Time{model.FromMillis(10), model.FromMillis(20), model.FromMillis(15)}
	fn := func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		return &Outcome{
			Best:    &sched.Mapping{},
			Eval:    sched.Result{Makespan: makespans[run]},
			Cost:    costs[run],
			HasCost: true,
		}, nil
	}
	agg, err := Run(context.Background(), nil, Options{Runs: 3, Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.BestHasCost {
		t.Fatal("aggregate lost the cost report")
	}
	if agg.BestRun != 1 || agg.BestCost != 1.0 {
		t.Fatalf("Best picked run %d (cost %v); want the min-cost run 1", agg.BestRun, agg.BestCost)
	}
	if agg.BestEval.Makespan != makespans[1] {
		t.Fatalf("BestEval does not belong to the winning run: %v", agg.BestEval.Makespan)
	}
}

// TestAggregateBestLegacyMakespan pins the fallback: outcomes that do not
// report costs (HasCost false) keep the historical lowest-makespan
// selection, and a genuine zero cost is distinguishable from "unreported".
func TestAggregateBestLegacyMakespan(t *testing.T) {
	makespans := []model.Time{model.FromMillis(12), model.FromMillis(8), model.FromMillis(30)}
	fn := func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		return &Outcome{
			Best: &sched.Mapping{},
			Eval: sched.Result{Makespan: makespans[run]},
			// Cost deliberately left 0 with HasCost false: legacy adapters.
		}, nil
	}
	agg, err := Run(context.Background(), nil, Options{Runs: 3, Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if agg.BestHasCost {
		t.Fatal("legacy batch claims a cost report")
	}
	if agg.BestRun != 1 {
		t.Fatalf("legacy Best picked run %d; want the min-makespan run 1", agg.BestRun)
	}

	// A genuine zero-cost batch is not mistaken for the legacy case.
	zero := func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		return &Outcome{
			Best:    &sched.Mapping{},
			Eval:    sched.Result{Makespan: makespans[run]},
			Cost:    0,
			HasCost: true,
		}, nil
	}
	agg, err = Run(context.Background(), nil, Options{Runs: 3, Workers: 1}, zero)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.BestHasCost || agg.BestCost != 0 {
		t.Fatalf("zero-cost batch misreported: hasCost=%v cost=%v", agg.BestHasCost, agg.BestCost)
	}
	// Equal costs: ties go to the lowest run index.
	if agg.BestRun != 0 {
		t.Fatalf("tie broken toward run %d; want run 0", agg.BestRun)
	}
}
