package runner

import (
	"context"
	"errors"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/memo"
	"repro/internal/model"
	"repro/internal/objective"
	"repro/internal/search"
)

// ResultCache memoizes completed run outcomes under the deterministic run
// key — sha256 over (application digest, architecture digest, strategy /
// objective fingerprint, seed, step budget). Since PR 4 every run is a
// pure function of that key, so a hit is bit-identical to recomputation:
// the cache stores a private deep copy and hands a fresh deep copy to
// every consumer, which keeps cached mappings and fronts isolated from
// whatever the engine mutates downstream.
type ResultCache struct {
	c *memo.Cache[*Outcome]
}

// NewResultCache creates a cache bounded to capacity entries (<=0 selects
// memo.DefaultCapacity) whose entries expire after ttl (0 = never).
func NewResultCache(capacity int, ttl time.Duration) *ResultCache {
	return &ResultCache{c: memo.New[*Outcome](memo.Options{Capacity: capacity, TTL: ttl})}
}

// Stats snapshots the underlying cache counters.
func (rc *ResultCache) Stats() memo.Stats { return rc.c.Stats() }

// Len returns the resident entry count.
func (rc *ResultCache) Len() int { return rc.c.Len() }

// cloneOutcome deep-copies an outcome so cache-resident state never
// aliases state owned by a consumer. FromCache is deliberately reset —
// it describes a delivery, not the solution.
func cloneOutcome(o *Outcome) *Outcome {
	c := *o
	c.FromCache = false
	if o.Best != nil {
		c.Best = o.Best.Clone()
	}
	if o.Front != nil {
		c.Front = o.Front.Clone()
	}
	return &c
}

// KeyFunc derives the memoization key of one run; ok=false marks the run
// uncacheable (the wrapper then always computes).
type KeyFunc func(run int, seed int64) (memo.Key, bool)

// uncacheable is the KeyFunc of configurations that must not be cached.
func uncacheable(int, int64) (memo.Key, bool) { return memo.Key{}, false }

// StrategyKey builds the KeyFunc of a strategy-factory batch: the
// instance digests and the factory fingerprint are computed once, each
// run then contributes only its seed and the driver's step budget. The
// run index is deliberately absent — a run's result depends on its seed
// alone. Factories carrying function-typed hooks are uncacheable.
func StrategyKey(f *search.Factory, maxSteps int) KeyFunc {
	fp, ok := f.Fingerprint()
	if !ok {
		return uncacheable
	}
	appD, archD := f.App().Digest(), f.Arch().Digest()
	steps := strconv.Itoa(maxSteps)
	return func(run int, seed int64) (memo.Key, bool) {
		return memo.KeyOf(appD, archD, fp, steps, strconv.FormatInt(seed, 10)), true
	}
}

// SAKey builds the KeyFunc of a legacy runner.SA batch over the same key
// derivation (tagged "sa-core" so the legacy driver and the stepped
// strategy engine never share entries — their results are bit-identical
// by contract, but the contract is enforced by tests, not construction).
func SAKey(app *model.App, arch *model.Arch, cfg core.Config) KeyFunc {
	if cfg.Schedule != nil || cfg.Stop != nil || cfg.Trace != nil || cfg.Objective != nil {
		return uncacheable
	}
	fp := "sa-core|" +
		strconv.FormatFloat(cfg.Quality, 'g', -1, 64) + "|" +
		strconv.Itoa(cfg.Warmup) + "|" +
		strconv.Itoa(cfg.MaxIters) + "|" +
		strconv.FormatInt(int64(cfg.Deadline), 10) + "|" +
		strconv.FormatBool(cfg.ExploreArch) + "|" +
		strconv.FormatFloat(cfg.PenaltyWeight, 'g', -1, 64) + "|" +
		strconv.FormatBool(cfg.AdaptiveMoves) + "|" +
		strconv.Itoa(cfg.QuenchIters) + "|" +
		strconv.FormatBool(cfg.EnableCtxSplit) + "|" +
		metricsTag(cfg.FrontMetrics)
	appD, archD := app.Digest(), arch.Digest()
	return func(run int, seed int64) (memo.Key, bool) {
		return memo.KeyOf(appD, archD, fp, strconv.FormatInt(seed, 10)), true
	}
}

// GAKey builds the KeyFunc of a legacy runner.GA batch (tagged
// "ga-core", mirroring SAKey).
func GAKey(app *model.App, arch *model.Arch, cfg ga.Config, deadline model.Time) KeyFunc {
	if cfg.Stop != nil || cfg.Objective != nil {
		return uncacheable
	}
	fp := "ga-core|" +
		strconv.Itoa(cfg.Population) + "|" +
		strconv.Itoa(cfg.Generations) + "|" +
		strconv.Itoa(cfg.Stall) + "|" +
		strconv.FormatFloat(cfg.CrossoverRate, 'g', -1, 64) + "|" +
		strconv.FormatFloat(cfg.MutationRate, 'g', -1, 64) + "|" +
		strconv.Itoa(cfg.Elite) + "|" +
		strconv.Itoa(cfg.TournamentK) + "|" +
		strconv.FormatInt(int64(deadline), 10) + "|" +
		metricsTag(cfg.FrontMetrics)
	appD, archD := app.Digest(), arch.Digest()
	return func(run int, seed int64) (memo.Key, bool) {
		return memo.KeyOf(appD, archD, fp, strconv.FormatInt(seed, 10)), true
	}
}

// metricsTag encodes a front-metric list for the legacy key fingerprint.
func metricsTag(ms []objective.Metric) string {
	var b []byte
	for _, m := range ms {
		b = append(b, m.String()...)
		b = append(b, ',')
	}
	return string(b)
}

// Cached wraps fn with the memoized result cache: a hit returns a deep
// copy of the stored outcome (flagged FromCache) without invoking fn, a
// miss computes, stores a deep copy of the completed outcome, and
// returns the original. Concurrent identical misses compute once
// (singleflight). Errors — including the cancellation errors a RunFunc
// returns for truncated runs — are never cached, so a partial result
// cannot poison the cache. A nil cache returns fn unchanged.
func Cached(cache *ResultCache, keyFor KeyFunc, fn RunFunc) RunFunc {
	if cache == nil {
		return fn
	}
	return func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		k, ok := keyFor(run, seed)
		if !ok {
			return fn(ctx, run, seed)
		}
		for {
			var fresh *Outcome
			v, hit, err := cache.c.Do(ctx, k, func() (*Outcome, error) {
				out, err := fn(ctx, run, seed)
				if err != nil {
					return nil, err
				}
				fresh = out
				return cloneOutcome(out), nil
			})
			if err != nil {
				// A singleflight waiter inherits the leader's error — but
				// the leader's cancellation is not ours. When this caller's
				// context is still live, re-enter Do so a single new leader
				// is elected among the surviving waiters (computing via fn
				// directly here would race N duplicate explorations —
				// exactly what the singleflight exists to prevent). A
				// caller whose own context is cancelled falls through and
				// returns the error.
				if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
					continue
				}
				return nil, err
			}
			if v == nil {
				// Defensive: nil is never a legitimately cached outcome.
				return nil, errors.New("runner: cache returned nil outcome")
			}
			if fresh != nil && !hit {
				// This caller ran the compute; hand back its own outcome
				// (the cache holds an independent copy).
				return fresh, nil
			}
			out := cloneOutcome(v)
			out.FromCache = true
			return out, nil
		}
	}
}

// CachedStrategyBudget is StrategyBudget behind the result cache — the
// budgeted batch primitive of dsebench, dsed, and every other consumer
// that replays scenario × strategy cells. A nil cache degrades to the
// uncached primitive.
func CachedStrategyBudget(cache *ResultCache, f *search.Factory, maxSteps int) RunFunc {
	return Cached(cache, StrategyKey(f, maxSteps), StrategyBudget(f, maxSteps))
}

// CachedSA is runner.SA behind the result cache, for the legacy
// annealing-batch drivers (dsecompare).
func CachedSA(cache *ResultCache, app *model.App, arch *model.Arch, cfg core.Config) (RunFunc, error) {
	fn, err := SA(app, arch, cfg)
	if err != nil {
		return nil, err
	}
	return Cached(cache, SAKey(app, arch, cfg), fn), nil
}

// CachedGA is runner.GA behind the result cache.
func CachedGA(cache *ResultCache, app *model.App, arch *model.Arch, cfg ga.Config, deadline model.Time) (RunFunc, error) {
	fn, err := GA(app, arch, cfg, deadline)
	if err != nil {
		return nil, err
	}
	return Cached(cache, GAKey(app, arch, cfg, deadline), fn), nil
}
