package runner

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/memo"
	"repro/internal/model"
	"repro/internal/objective"
	"repro/internal/search"
)

// ResultCache memoizes completed run outcomes under the deterministic run
// key — sha256 over (application digest, architecture digest, strategy /
// objective fingerprint, seed, step budget). Since PR 4 every run is a
// pure function of that key, so a hit is bit-identical to recomputation:
// the cache stores a private deep copy and hands a fresh deep copy to
// every consumer, which keeps cached mappings and fronts isolated from
// whatever the engine mutates downstream.
type ResultCache struct {
	c *memo.Cache[*Outcome]

	// The transfer-donor index (see transfer.go): per instance pair, the
	// best outcome seen so far, kept outside the memo shards because it
	// survives eviction and is keyed by (app, arch) rather than the full
	// run key. Lazily initialized under donorMu; not persisted by
	// Snapshot — replayed runs repopulate it.
	donorMu sync.Mutex
	donors  map[string]donorEntry
}

// ResultCacheOptions sizes and shapes a ResultCache: capacity, shard
// count, eviction policy, and the TTL / stale-while-revalidate windows.
// The zero value selects the memo defaults (LRU, no expiry).
type ResultCacheOptions struct {
	// Capacity bounds the total cached outcome count (<=0 selects
	// memo.DefaultCapacity).
	Capacity int
	// Shards is the lock-shard count (<=0 selects memo.DefaultShards).
	Shards int
	// TTL expires outcomes that long after insertion (0 = never).
	TTL time.Duration
	// StaleFor, with TTL, keeps expired outcomes servable for that
	// additional window while a background singleflight refresh
	// revalidates them (stale-while-revalidate).
	StaleFor time.Duration
	// Policy selects the eviction policy (memo.PolicyLRU default).
	Policy memo.Policy
}

// NewResultCacheWith creates a cache shaped by opts.
func NewResultCacheWith(opts ResultCacheOptions) *ResultCache {
	return &ResultCache{c: memo.New[*Outcome](memo.Options{
		Capacity: opts.Capacity,
		Shards:   opts.Shards,
		TTL:      opts.TTL,
		StaleFor: opts.StaleFor,
		Policy:   opts.Policy,
	})}
}

// NewResultCache creates a cache bounded to capacity entries (<=0 selects
// memo.DefaultCapacity) whose entries expire after ttl (0 = never), with
// the default LRU policy. Use NewResultCacheWith for policy and
// stale-while-revalidate control.
func NewResultCache(capacity int, ttl time.Duration) *ResultCache {
	return NewResultCacheWith(ResultCacheOptions{Capacity: capacity, TTL: ttl})
}

// Stats snapshots the underlying cache counters.
func (rc *ResultCache) Stats() memo.Stats { return rc.c.Stats() }

// Len returns the resident entry count.
func (rc *ResultCache) Len() int { return rc.c.Len() }

// cloneOutcome deep-copies an outcome so cache-resident state never
// aliases state owned by a consumer. FromCache is deliberately reset —
// it describes a delivery, not the solution.
func cloneOutcome(o *Outcome) *Outcome {
	c := *o
	c.FromCache = false
	if o.Best != nil {
		c.Best = o.Best.Clone()
	}
	if o.Front != nil {
		c.Front = o.Front.Clone()
	}
	if o.MoveProposed != nil {
		c.MoveProposed = make(map[string]int64, len(o.MoveProposed))
		for k, v := range o.MoveProposed {
			c.MoveProposed[k] = v
		}
	}
	if o.MoveAccepted != nil {
		c.MoveAccepted = make(map[string]int64, len(o.MoveAccepted))
		for k, v := range o.MoveAccepted {
			c.MoveAccepted[k] = v
		}
	}
	c.Sched = o.Sched.Clone()
	return &c
}

// KeyFunc derives the memoization key of one run; ok=false marks the run
// uncacheable (the wrapper then always computes).
type KeyFunc func(run int, seed int64) (memo.Key, bool)

// uncacheable is the KeyFunc of configurations that must not be cached.
func uncacheable(int, int64) (memo.Key, bool) { return memo.Key{}, false }

// StrategyKey builds the KeyFunc of a strategy-factory batch: the
// instance digests and the factory fingerprint are computed once, each
// run then contributes only its seed and the driver's step budget. The
// run index is deliberately absent — a run's result depends on its seed
// alone. Factories carrying function-typed hooks are uncacheable.
func StrategyKey(f *search.Factory, maxSteps int) KeyFunc {
	fp, ok := f.Fingerprint()
	if !ok {
		return uncacheable
	}
	appD, archD := f.App().Digest(), f.Arch().Digest()
	steps := strconv.Itoa(maxSteps)
	return func(run int, seed int64) (memo.Key, bool) {
		return memo.KeyOf(appD, archD, fp, steps, strconv.FormatInt(seed, 10)), true
	}
}

// SAKey builds the KeyFunc of a legacy runner.SA batch over the same key
// derivation (tagged "sa-core" so the legacy driver and the stepped
// strategy engine never share entries — their results are bit-identical
// by contract, but the contract is enforced by tests, not construction).
func SAKey(app *model.App, arch *model.Arch, cfg core.Config) KeyFunc {
	if cfg.Schedule != nil || cfg.Stop != nil || cfg.Trace != nil || cfg.Objective != nil {
		return uncacheable
	}
	fp := "sa-core|" +
		strconv.FormatFloat(cfg.Quality, 'g', -1, 64) + "|" +
		strconv.Itoa(cfg.Warmup) + "|" +
		strconv.Itoa(cfg.MaxIters) + "|" +
		strconv.FormatInt(int64(cfg.Deadline), 10) + "|" +
		strconv.FormatBool(cfg.ExploreArch) + "|" +
		strconv.FormatFloat(cfg.PenaltyWeight, 'g', -1, 64) + "|" +
		strconv.FormatBool(cfg.AdaptiveMoves) + "|" +
		strconv.Itoa(cfg.QuenchIters) + "|" +
		strconv.FormatBool(cfg.EnableCtxSplit) + "|" +
		metricsTag(cfg.FrontMetrics)
	appD, archD := app.Digest(), arch.Digest()
	return func(run int, seed int64) (memo.Key, bool) {
		return memo.KeyOf(appD, archD, fp, strconv.FormatInt(seed, 10)), true
	}
}

// GAKey builds the KeyFunc of a legacy runner.GA batch (tagged
// "ga-core", mirroring SAKey).
func GAKey(app *model.App, arch *model.Arch, cfg ga.Config, deadline model.Time) KeyFunc {
	if cfg.Stop != nil || cfg.Objective != nil {
		return uncacheable
	}
	fp := "ga-core|" +
		strconv.Itoa(cfg.Population) + "|" +
		strconv.Itoa(cfg.Generations) + "|" +
		strconv.Itoa(cfg.Stall) + "|" +
		strconv.FormatFloat(cfg.CrossoverRate, 'g', -1, 64) + "|" +
		strconv.FormatFloat(cfg.MutationRate, 'g', -1, 64) + "|" +
		strconv.Itoa(cfg.Elite) + "|" +
		strconv.Itoa(cfg.TournamentK) + "|" +
		strconv.FormatInt(int64(deadline), 10) + "|" +
		metricsTag(cfg.FrontMetrics)
	appD, archD := app.Digest(), arch.Digest()
	return func(run int, seed int64) (memo.Key, bool) {
		return memo.KeyOf(appD, archD, fp, strconv.FormatInt(seed, 10)), true
	}
}

// metricsTag encodes a front-metric list for the legacy key fingerprint.
func metricsTag(ms []objective.Metric) string {
	var b []byte
	for _, m := range ms {
		b = append(b, m.String()...)
		b = append(b, ',')
	}
	return string(b)
}

// CacheConfig describes one memoized run source for WithCache: the
// cache itself plus exactly one source — a strategy-engine factory
// (Factory + MaxSteps), a legacy annealing batch (SA + App/Arch), a
// legacy genetic batch (GA + GADeadline + App/Arch), or an arbitrary
// RunFunc with its own key derivation (Fn + Key).
type CacheConfig struct {
	// Cache is the memoized result cache; nil disables caching (the
	// resolved RunFunc computes every run).
	Cache *ResultCache

	// Factory + MaxSteps select a budgeted strategy-engine batch
	// (StrategyBudget behind StrategyKey) — the primitive dsed, dsebench,
	// and dsesweep replay.
	Factory  *search.Factory
	MaxSteps int

	// SA selects a legacy annealing batch over App/Arch (runner.SA behind
	// SAKey).
	SA *core.Config
	// GA selects a legacy genetic batch over App/Arch with the given
	// deadline (runner.GA behind GAKey).
	GA         *ga.Config
	GADeadline model.Time
	// App and Arch are the models of an SA or GA source.
	App  *model.App
	Arch *model.Arch

	// Fn + Key lift an arbitrary RunFunc over the cache with a custom key
	// derivation.
	Fn  RunFunc
	Key KeyFunc
}

// WithCache resolves cfg into a cache-wrapped RunFunc — the single entry
// point behind which the per-driver Cached* constructors collapsed. A
// hit returns a deep copy of the stored outcome (flagged FromCache)
// without computing; a miss computes, stores a deep copy, and returns
// the original; concurrent identical misses compute once (singleflight);
// errors — including the cancellation errors truncated runs return — are
// never cached. With cfg.Cache nil the source runs uncached.
func WithCache(cfg CacheConfig) (RunFunc, error) {
	sources := 0
	for _, set := range []bool{cfg.Factory != nil, cfg.SA != nil, cfg.GA != nil, cfg.Fn != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("runner: WithCache needs exactly one source (Factory, SA, GA, or Fn), got %d", sources)
	}
	switch {
	case cfg.Factory != nil:
		keyFor := StrategyKey(cfg.Factory, cfg.MaxSteps)
		fn := cached(cfg.Cache, keyFor, StrategyBudget(cfg.Factory, cfg.MaxSteps))
		if cfg.Cache != nil {
			// Every successful outcome — fresh or replayed from a restored
			// snapshot — is offered to the transfer-donor index, so later
			// jobs on the same instance pair can warm-start from it (see
			// transfer.go).
			appD, archD := cfg.Factory.App().Digest(), cfg.Factory.Arch().Digest()
			inner, cache := fn, cfg.Cache
			fn = func(ctx context.Context, run int, seed int64) (*Outcome, error) {
				out, err := inner(ctx, run, seed)
				if err == nil {
					if k, ok := keyFor(run, seed); ok {
						cache.offerDonor(appD, archD, k.Hex(), out)
					}
				}
				return out, err
			}
		}
		return fn, nil
	case cfg.SA != nil:
		if cfg.App == nil || cfg.Arch == nil {
			return nil, fmt.Errorf("runner: WithCache SA source needs App and Arch")
		}
		fn, err := SA(cfg.App, cfg.Arch, *cfg.SA)
		if err != nil {
			return nil, err
		}
		return cached(cfg.Cache, SAKey(cfg.App, cfg.Arch, *cfg.SA), fn), nil
	case cfg.GA != nil:
		if cfg.App == nil || cfg.Arch == nil {
			return nil, fmt.Errorf("runner: WithCache GA source needs App and Arch")
		}
		fn, err := GA(cfg.App, cfg.Arch, *cfg.GA, cfg.GADeadline)
		if err != nil {
			return nil, err
		}
		return cached(cfg.Cache, GAKey(cfg.App, cfg.Arch, *cfg.GA, cfg.GADeadline), fn), nil
	default:
		if cfg.Key == nil {
			return nil, fmt.Errorf("runner: WithCache Fn source needs a Key derivation")
		}
		return cached(cfg.Cache, cfg.Key, cfg.Fn), nil
	}
}

// cached wraps fn with the memoized result cache under keyFor. A nil
// cache returns fn unchanged.
func cached(cache *ResultCache, keyFor KeyFunc, fn RunFunc) RunFunc {
	if cache == nil {
		return fn
	}
	return func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		k, ok := keyFor(run, seed)
		if !ok {
			return fn(ctx, run, seed)
		}
		for {
			var fresh *Outcome
			v, hit, err := cache.c.Do(ctx, k, func() (*Outcome, error) {
				out, err := fn(ctx, run, seed)
				if err != nil {
					return nil, err
				}
				fresh = out
				return cloneOutcome(out), nil
			})
			if err != nil {
				// A singleflight waiter inherits the leader's error — but
				// the leader's cancellation is not ours. When this caller's
				// context is still live, re-enter Do so a single new leader
				// is elected among the surviving waiters (computing via fn
				// directly here would race N duplicate explorations —
				// exactly what the singleflight exists to prevent). A
				// caller whose own context is cancelled falls through and
				// returns the error.
				if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
					continue
				}
				return nil, err
			}
			if v == nil {
				// Defensive: nil is never a legitimately cached outcome.
				return nil, errors.New("runner: cache returned nil outcome")
			}
			if fresh != nil && !hit {
				// This caller ran the compute; hand back its own outcome
				// (the cache holds an independent copy).
				return fresh, nil
			}
			out := cloneOutcome(v)
			out.FromCache = true
			return out, nil
		}
	}
}
