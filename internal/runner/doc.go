// Package runner is the parallel multi-run exploration engine: it executes
// N independent exploration runs (simulated annealing or the GA baseline)
// across a pool of workers, one deterministic seed stream per run, and
// aggregates their results as they stream in.
//
// The paper's headline results are averages over ~100 independent annealing
// runs per configuration — an embarrassingly parallel outer loop. The
// runner parallelizes exactly that loop while keeping it reproducible:
//
//   - run i always uses seed BaseSeed+i, so each run's outcome is a pure
//     function of its seed regardless of the worker count;
//   - completed runs pass through an in-order merger (a reorder buffer keyed
//     by run index) before touching the aggregate, so the streamed
//     statistics, the best-solution tie-breaks and the Pareto archive are
//     byte-identical between Workers=1 and Workers=NumCPU.
//
// Cancellation is cooperative: the context is forwarded into each run's
// Stop hook, so an in-flight annealing run winds down within one iteration
// and the batch returns the aggregate of every run that completed.
package runner
