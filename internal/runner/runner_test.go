package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/model"
	"repro/internal/objective"
	"repro/internal/pareto"
	"repro/internal/sched"
)

func motionSetup(nclb int) (*model.App, *model.Arch) {
	cfg := apps.DefaultMotionConfig()
	return apps.MotionDetection(cfg), apps.MotionArch(nclb, cfg)
}

func fastSA(t *testing.T, app *model.App, arch *model.Arch) RunFunc {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MaxIters = 600
	cfg.Warmup = 150
	cfg.QuenchIters = 200
	cfg.Deadline = apps.MotionDeadline
	fn, err := SA(app, arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// runBatch executes a batch and returns the aggregate plus the stream of
// per-run results in delivery order.
func runBatch(t *testing.T, app *model.App, fn RunFunc, runs, workers int, base int64) (*Aggregate, []RunResult) {
	t.Helper()
	var stream []RunResult
	agg, err := Run(context.Background(), app, Options{
		Runs:     runs,
		Workers:  workers,
		BaseSeed: base,
		OnResult: func(r RunResult) { stream = append(stream, r) },
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	return agg, stream
}

// TestDeterminism is the engine's core contract: the same base seed must
// produce byte-identical per-run results and aggregates for any worker
// count.
func TestDeterminism(t *testing.T) {
	app, arch := motionSetup(2000)
	fn := fastSA(t, app, arch)
	const runs = 6

	agg1, stream1 := runBatch(t, app, fn, runs, 1, 42)
	aggN, streamN := runBatch(t, app, fn, runs, runtime.NumCPU(), 42)

	if len(stream1) != runs || len(streamN) != runs {
		t.Fatalf("stream lengths %d/%d, want %d", len(stream1), len(streamN), runs)
	}
	for i := range stream1 {
		a, b := stream1[i], streamN[i]
		if a.Run != i || b.Run != i {
			t.Fatalf("stream out of order at %d: runs %d/%d", i, a.Run, b.Run)
		}
		if a.Seed != b.Seed || a.Outcome.Eval != b.Outcome.Eval {
			t.Fatalf("run %d diverges across worker counts: %+v vs %+v", i, a.Outcome.Eval, b.Outcome.Eval)
		}
	}
	if agg1.MakespanMS.Mean() != aggN.MakespanMS.Mean() ||
		agg1.MakespanMS.Min() != aggN.MakespanMS.Min() ||
		agg1.MakespanMS.Quantile(0.95) != aggN.MakespanMS.Quantile(0.95) {
		t.Fatalf("aggregate statistics diverge: %v vs %v", agg1.MakespanMS, aggN.MakespanMS)
	}
	if agg1.BestRun != aggN.BestRun || agg1.BestEval != aggN.BestEval {
		t.Fatalf("best-solution selection diverges: run %d (%v) vs run %d (%v)",
			agg1.BestRun, agg1.BestEval.Makespan, aggN.BestRun, aggN.BestEval.Makespan)
	}
	p1, pN := agg1.Archive.Points(), aggN.Archive.Points()
	if len(p1) != len(pN) {
		t.Fatalf("archive sizes diverge: %d vs %d", len(p1), len(pN))
	}
	for i := range p1 {
		if p1[i] != pN[i] {
			t.Fatalf("archive point %d diverges: %+v vs %+v", i, p1[i], pN[i])
		}
	}
	if agg1.Completed != runs || agg1.DeadlineMet != aggN.DeadlineMet {
		t.Fatalf("completed %d, deadline met %d vs %d", agg1.Completed, agg1.DeadlineMet, aggN.DeadlineMet)
	}
	// Per-run purity: run i of a batch starting at base 42 equals run 0 of
	// a batch starting at base 42+i.
	shifted, _ := runBatch(t, app, fn, 1, 1, 44)
	if shifted.BestEval != stream1[2].Outcome.Eval {
		t.Fatalf("run result is not a pure function of the seed: %+v vs %+v",
			shifted.BestEval, stream1[2].Outcome.Eval)
	}
}

// TestCancellation cancels mid-batch and checks that the partial aggregate
// of completed runs comes back and that no goroutines leak.
func TestCancellation(t *testing.T) {
	app, arch := motionSetup(2000)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	slow := func(runCtx context.Context, run int, seed int64) (*Outcome, error) {
		// First run completes instantly; the rest block until cancelled.
		if started.Add(1) > 1 {
			<-runCtx.Done()
			return nil, runCtx.Err()
		}
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.MaxIters = 300
		cfg.Warmup = 100
		cfg.QuenchIters = 0
		res, err := core.Explore(app, arch, cfg)
		if err != nil {
			return nil, err
		}
		cancel()
		return &Outcome{Best: res.Best, Eval: res.BestEval, MetDeadline: true}, nil
	}

	agg, err := Run(ctx, app, Options{Runs: 16, Workers: 4, BaseSeed: 7}, slow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if agg == nil {
		t.Fatal("cancelled batch must still return the partial aggregate")
	}
	if agg.Completed < 1 || agg.Completed >= 16 {
		t.Fatalf("completed %d runs, want partial (>=1, <16)", agg.Completed)
	}
	if agg.Requested != 16 {
		t.Fatalf("requested %d, want 16", agg.Requested)
	}
	if agg.Best == nil {
		t.Fatal("partial aggregate lost the best solution")
	}

	// All pool goroutines must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d before, %d after cancellation", before, n)
	}
}

// TestRunError checks that a failing run cancels the batch and surfaces the
// lowest-index error with the partial aggregate.
func TestRunError(t *testing.T) {
	boom := errors.New("boom")
	fn := func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		if run == 3 {
			return nil, boom
		}
		return &Outcome{
			Best:        &sched.Mapping{},
			Eval:        sched.Result{Makespan: model.Time(seed)},
			MetDeadline: true,
		}, nil
	}
	agg, err := Run(context.Background(), nil, Options{Runs: 8, Workers: 2, BaseSeed: 100}, fn)
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	if agg == nil || agg.Completed == 0 {
		t.Fatalf("error batch must return the partial aggregate, got %+v", agg)
	}
}

// TestArchiveMerge drives pareto.Archive with a randomized split/merge and
// checks that merging per-shard archives equals the archive of all points —
// the property the runner relies on for any future sharded aggregation.
func TestArchiveMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		points := make([]model.Impl, 40)
		for i := range points {
			points[i] = model.Impl{
				CLBs: 10 + rng.Intn(30),
				Time: model.Time(1000 * (1 + rng.Intn(50))),
			}
		}
		var whole pareto.Archive
		for i, p := range points {
			whole.Add(p, i)
		}
		var left, right pareto.Archive
		cut := rng.Intn(len(points))
		for i, p := range points[:cut] {
			left.Add(p, i)
		}
		for i, p := range points[cut:] {
			right.Add(p, cut+i)
		}
		left.Merge(&right)

		got, want := left.Points(), whole.Points()
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged frontier has %d points, whole has %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Impl != want[i].Impl {
				t.Fatalf("trial %d: frontier point %d: merged %+v vs whole %+v", trial, i, got[i], want[i])
			}
		}
		// The frontier must be an antichain: strictly increasing area,
		// strictly decreasing time.
		for i := 1; i < len(got); i++ {
			if got[i].Impl.CLBs <= got[i-1].Impl.CLBs || got[i].Impl.Time >= got[i-1].Impl.Time {
				t.Fatalf("trial %d: not an antichain at %d: %+v, %+v", trial, i, got[i-1], got[i])
			}
		}
	}
}

// TestHWArea pins the archive's area coordinate — now served by the shared
// objective layer — on a hand-built mapping.
func TestHWArea(t *testing.T) {
	app, arch := motionSetup(2000)
	m, err := sched.NewMapping(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for t2, pl := range m.Assign {
		if pl.Kind != model.KindProcessor {
			want += app.Tasks[t2].HW[m.Impl[t2]].CLBs
		}
	}
	if got := objective.HWAreaOf(app, m); got != want {
		t.Fatalf("HWAreaOf = %d, want %d", got, want)
	}
}

// TestGABatch smoke-tests the GA adapter through the engine.
func TestGABatch(t *testing.T) {
	app, arch := motionSetup(2000)
	gcfg := ga.DefaultConfig()
	gcfg.Population = 24
	gcfg.Generations = 6
	gcfg.Stall = 3
	fn, err := GA(app, arch, gcfg, apps.MotionDeadline)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Run(context.Background(), app, Options{Runs: 3, Workers: 3, BaseSeed: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Completed != 3 || agg.Best == nil {
		t.Fatalf("GA batch incomplete: %+v", agg)
	}
	if agg.BestEval.Makespan <= 0 || agg.BestEval.Makespan >= app.TotalSW() {
		t.Fatalf("implausible GA makespan %v", agg.BestEval.Makespan)
	}
}

func TestOptionDefaults(t *testing.T) {
	fn := func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		return &Outcome{Best: &sched.Mapping{}, Eval: sched.Result{Makespan: 1}, MetDeadline: true}, nil
	}
	agg, err := Run(context.Background(), nil, Options{}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Requested != 1 || agg.Completed != 1 {
		t.Fatalf("zero options should mean one run: %+v", agg)
	}
	if _, err := Run(context.Background(), nil, Options{}, nil); err == nil {
		t.Fatal("nil RunFunc must error")
	}
}

// Example-style sanity check: keep the doc comment's claim about the seed
// stream honest.
func TestSeedStream(t *testing.T) {
	var seeds []int64
	fn := func(ctx context.Context, run int, seed int64) (*Outcome, error) {
		return &Outcome{
			Best: &sched.Mapping{},
			Eval: sched.Result{Makespan: model.Time(seed)},
		}, nil
	}
	agg, err := Run(context.Background(), nil, Options{
		Runs: 5, Workers: 2, BaseSeed: 1000,
		OnResult: func(r RunResult) { seeds = append(seeds, r.Seed) },
	}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		if s != 1000+int64(i) {
			t.Fatalf("seed stream broken: %v", seeds)
		}
	}
	if agg.MakespanMS.N() != 5 {
		t.Fatalf("aggregated %d runs, want 5", agg.MakespanMS.N())
	}
	if fmt.Sprintf("%.0f", agg.MakespanMS.Mean()) == "" {
		t.Fatal("unreachable")
	}
}
