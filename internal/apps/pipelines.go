package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// JPEG builds a baseline-JPEG encoder task graph: color conversion, level
// shift, then per-component (Y, Cb, Cr) DCT → quantization → zigzag
// pipelines that join into entropy coding and bitstream packing. It is the
// "streaming media" example application of the README. The structure is
// fixed (15 stages); rng only drives the synthesized hardware points, so
// the graph is a pure function of the rng's seed.
func JPEG(rng *rand.Rand) *model.App {
	app := &model.App{Name: "jpeg-encoder"}
	add := func(name string, swMs float64, minCLB, maxCLB int, minSp, maxSp float64) int {
		sw := model.FromMillis(swMs)
		app.Tasks = append(app.Tasks, model.Task{
			Name: name,
			SW:   sw,
			HW:   SynthHW(rng, sw, 5+rng.Intn(2), minCLB, maxCLB, minSp, maxSp),
		})
		return len(app.Tasks) - 1
	}
	flow := func(from, to int, qty int64) {
		app.Flows = append(app.Flows, model.Flow{From: from, To: to, Qty: qty})
	}

	const block = 64 * 1024 // one striped image plane

	src := add("capture", 1.5, 40, 120, 5, 15)
	csc := add("rgb2ycbcr", 4.0, 80, 300, 10, 40)
	shift := add("level_shift", 1.0, 40, 160, 8, 30)
	flow(src, csc, 3*block)
	flow(csc, shift, 3*block)

	var packs []int
	for _, comp := range []string{"y", "cb", "cr"} {
		dct := add("dct_"+comp, 6.0, 120, 500, 12, 50)
		q := add("quant_"+comp, 2.0, 60, 220, 8, 30)
		zz := add("zigzag_"+comp, 1.2, 40, 150, 6, 20)
		flow(shift, dct, block)
		flow(dct, q, block)
		flow(q, zz, block)
		packs = append(packs, zz)
	}

	rle := add("rle", 2.5, 60, 200, 4, 12)
	huff := add("huffman", 5.0, 80, 280, 3, 10)
	out := add("bitstream", 1.0, 40, 120, 3, 8)
	for _, p := range packs {
		flow(p, rle, block/2)
	}
	flow(rle, huff, block/2)
	flow(huff, out, block/4)
	return app
}

// FFT builds a radix-2 decimation-in-time FFT task graph with n points
// (n must be a power of two ≥ 4): a bit-reversal stage, log2(n) butterfly
// ranks of n/2 parallel butterfly tasks each, and a collection stage. This
// is the "signal processing" example application. rng drives only the
// synthesized hardware points.
func FFT(rng *rand.Rand, n int) (*model.App, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("apps: FFT size %d is not a power of two ≥ 4", n)
	}
	app := &model.App{Name: fmt.Sprintf("fft-%d", n)}
	add := func(name string, swUs float64) int {
		sw := model.FromMicros(swUs)
		app.Tasks = append(app.Tasks, model.Task{
			Name: name,
			SW:   sw,
			HW:   SynthHW(rng, sw, 5, 30, 200, 6, 25),
		})
		return len(app.Tasks) - 1
	}
	flow := func(from, to int, qty int64) {
		app.Flows = append(app.Flows, model.Flow{From: from, To: to, Qty: qty})
	}

	const sample = 8 // bytes per complex sample
	bitrev := add("bit_reverse", 300)

	stages := 0
	for s := n; s > 1; s >>= 1 {
		stages++
	}
	half := n / 2
	prev := make([]int, half) // previous rank's butterfly per lane pair
	for i := range prev {
		prev[i] = bitrev
	}
	for s := 0; s < stages; s++ {
		cur := make([]int, half)
		for b := 0; b < half; b++ {
			t := add(fmt.Sprintf("bfly_s%d_%d", s, b), 150)
			cur[b] = t
			// Each butterfly consumes two lanes of the previous rank; the
			// lane mapping of radix-2 DIT pairs lanes at distance 2^s.
			span := 1 << s
			lane0 := (b/span)*(2*span) + b%span
			lane1 := lane0 + span
			p0, p1 := prev[lane0%half], prev[lane1%half]
			flow(p0, t, 2*sample)
			if p1 != p0 {
				flow(p1, t, 2*sample)
			}
		}
		prev = cur
	}
	collect := add("collect", 200)
	seen := map[int]bool{}
	for _, p := range prev {
		if !seen[p] {
			seen[p] = true
			flow(p, collect, int64(n)*sample/int64(len(prev)))
		}
	}
	return app, app.Validate()
}
