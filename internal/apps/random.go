package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// RandomConfig parameterizes the layered random task-graph generator used
// by the stress tests and the scalability benchmarks.
type RandomConfig struct {
	Seed   int64
	Tasks  int
	Layers int
	// EdgeProb is the probability of a flow between tasks in consecutive
	// layers.
	EdgeProb float64
	// SWMin/SWMax bound the software execution times.
	SWMin, SWMax model.Time
	// QtyMax bounds flow volumes in bytes.
	QtyMax int64
}

// DefaultRandomConfig returns a medium-sized generator setting.
func DefaultRandomConfig(seed int64) RandomConfig {
	return RandomConfig{
		Seed:     seed,
		Tasks:    40,
		Layers:   8,
		EdgeProb: 0.35,
		SWMin:    model.FromMicros(200),
		SWMax:    model.FromMillis(5),
		QtyMax:   32 * 1024,
	}
}

// Layered generates a layered random DAG: tasks are dealt into layers and
// flows connect consecutive layers. Every task carries a synthesized
// hardware Pareto set, so any HW/SW partition is feasible.
func Layered(cfg RandomConfig) (*model.App, error) {
	if cfg.Tasks < 1 || cfg.Layers < 1 || cfg.Layers > cfg.Tasks {
		return nil, fmt.Errorf("apps: invalid layered config: %d tasks, %d layers", cfg.Tasks, cfg.Layers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	app := &model.App{Name: fmt.Sprintf("layered-%d", cfg.Seed)}
	layerOf := make([]int, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		// Guarantee at least one task per layer, then deal the rest.
		if i < cfg.Layers {
			layerOf[i] = i
		} else {
			layerOf[i] = rng.Intn(cfg.Layers)
		}
		sw := cfg.SWMin + model.Time(rng.Int63n(int64(cfg.SWMax-cfg.SWMin+1)))
		app.Tasks = append(app.Tasks, model.Task{
			Name: fmt.Sprintf("t%02d", i),
			SW:   sw,
			HW:   SynthHW(rng, sw, 5+rng.Intn(2), 40, 400, 4, 30),
		})
	}
	for u := 0; u < cfg.Tasks; u++ {
		for v := 0; v < cfg.Tasks; v++ {
			if layerOf[v] == layerOf[u]+1 && rng.Float64() < cfg.EdgeProb {
				app.Flows = append(app.Flows, model.Flow{From: u, To: v, Qty: rng.Int63n(cfg.QtyMax + 1)})
			}
		}
	}
	return app, app.Validate()
}

// Chain generates an n-task pipeline with uniform software times and one
// flow of qty bytes between consecutive tasks — the structure of the
// paper's solution-space counting argument.
func Chain(n int, sw model.Time, qty int64, seed int64) *model.App {
	rng := rand.New(rand.NewSource(seed))
	app := &model.App{Name: fmt.Sprintf("chain-%d", n)}
	for i := 0; i < n; i++ {
		app.Tasks = append(app.Tasks, model.Task{
			Name: fmt.Sprintf("s%02d", i),
			SW:   sw,
			HW:   SynthHW(rng, sw, 5, 40, 300, 5, 25),
		})
		if i > 0 {
			app.Flows = append(app.Flows, model.Flow{From: i - 1, To: i, Qty: qty})
		}
	}
	return app
}
