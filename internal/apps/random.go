package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// RandomConfig parameterizes the layered random task-graph generator used
// by the stress tests and the scalability benchmarks.
type RandomConfig struct {
	Tasks  int
	Layers int
	// EdgeProb is the probability of a flow between tasks in consecutive
	// layers.
	EdgeProb float64
	// SWMin/SWMax bound the software execution times.
	SWMin, SWMax model.Time
	// QtyMax bounds flow volumes in bytes.
	QtyMax int64
}

// DefaultRandomConfig returns a medium-sized generator setting.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Tasks:    40,
		Layers:   8,
		EdgeProb: 0.35,
		SWMin:    model.FromMicros(200),
		SWMax:    model.FromMillis(5),
		QtyMax:   32 * 1024,
	}
}

// Layered generates a layered random DAG: tasks are dealt into layers and
// flows connect consecutive layers. Every task carries a synthesized
// hardware Pareto set, so any HW/SW partition is feasible. The graph is a
// pure function of the rng state and cfg (see the package determinism
// contract).
func Layered(rng *rand.Rand, cfg RandomConfig) (*model.App, error) {
	if cfg.Tasks < 1 || cfg.Layers < 1 || cfg.Layers > cfg.Tasks {
		return nil, fmt.Errorf("apps: invalid layered config: %d tasks, %d layers", cfg.Tasks, cfg.Layers)
	}
	if cfg.SWMin <= 0 || cfg.SWMax < cfg.SWMin || cfg.QtyMax < 0 {
		return nil, fmt.Errorf("apps: invalid layered bounds: sw [%v, %v], qty max %d", cfg.SWMin, cfg.SWMax, cfg.QtyMax)
	}
	app := &model.App{Name: fmt.Sprintf("layered-%d", cfg.Tasks)}
	layerOf := make([]int, cfg.Tasks)
	for i := 0; i < cfg.Tasks; i++ {
		// Guarantee at least one task per layer, then deal the rest.
		if i < cfg.Layers {
			layerOf[i] = i
		} else {
			layerOf[i] = rng.Intn(cfg.Layers)
		}
		sw := cfg.SWMin + model.Time(rng.Int63n(int64(cfg.SWMax-cfg.SWMin+1)))
		app.Tasks = append(app.Tasks, model.Task{
			Name: fmt.Sprintf("t%02d", i),
			SW:   sw,
			HW:   SynthHW(rng, sw, 5+rng.Intn(2), 40, 400, 4, 30),
		})
	}
	for u := 0; u < cfg.Tasks; u++ {
		for v := 0; v < cfg.Tasks; v++ {
			if layerOf[v] == layerOf[u]+1 && rng.Float64() < cfg.EdgeProb {
				app.Flows = append(app.Flows, model.Flow{From: u, To: v, Qty: rng.Int63n(cfg.QtyMax + 1)})
			}
		}
	}
	return app, app.Validate()
}

// Chain generates an n-task pipeline with uniform software times and one
// flow of qty bytes between consecutive tasks — the structure of the
// paper's solution-space counting argument. rng drives only the
// synthesized hardware points.
func Chain(rng *rand.Rand, n int, sw model.Time, qty int64) *model.App {
	app := &model.App{Name: fmt.Sprintf("chain-%d", n)}
	for i := 0; i < n; i++ {
		app.Tasks = append(app.Tasks, model.Task{
			Name: fmt.Sprintf("s%02d", i),
			SW:   sw,
			HW:   SynthHW(rng, sw, 5, 40, 300, 5, 25),
		})
		if i > 0 {
			app.Flows = append(app.Flows, model.Flow{From: i - 1, To: i, Qty: qty})
		}
	}
	return app
}
