package apps

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// Size is the scale class of a generated workload, tiny through XL. The
// registry's generators accept a Size and translate it into
// family-specific structural parameters (task counts, layer counts, tree
// widths), so callers can request "a large layered graph" without knowing
// the family's knobs.
type Size int

// The size classes, smallest to largest.
const (
	Tiny Size = iota
	Small
	Medium
	Large
	XL
)

var sizeNames = [...]string{"tiny", "small", "medium", "large", "xl"}

// String implements fmt.Stringer.
func (s Size) String() string {
	if s < Tiny || s > XL {
		return fmt.Sprintf("Size(%d)", int(s))
	}
	return sizeNames[s]
}

// ParseSize resolves a size-class name ("tiny", ..., "xl").
func ParseSize(name string) (Size, error) {
	for i, n := range sizeNames {
		if n == name {
			return Size(i), nil
		}
	}
	return 0, fmt.Errorf("apps: unknown size %q (have %v)", name, sizeNames)
}

// Sizes lists the size classes in ascending order.
func Sizes() []Size { return []Size{Tiny, Small, Medium, Large, XL} }

// Generator is one registered application family: a named, documented
// builder that produces an application of the requested size class from an
// explicit rng. Build must be a pure function of (rng state, size) — no
// internal seeding, no global state — so that two calls with identically
// seeded rngs yield bit-identical applications (the package determinism
// contract; see doc.go).
type Generator struct {
	// Family is the registry key ("chain", "layered", ...).
	Family string
	// Doc is a one-line description of the structure and what it stresses.
	Doc string
	// Build generates one application.
	Build func(rng *rand.Rand, size Size) (*model.App, error)
}

var registry = map[string]Generator{}

// Register adds a generator to the registry; it panics on an empty or
// duplicate family name (registration is an init-time programming act).
func Register(g Generator) {
	if g.Family == "" || g.Build == nil {
		panic("apps: Register with empty family or nil Build")
	}
	if _, dup := registry[g.Family]; dup {
		panic("apps: duplicate generator family " + g.Family)
	}
	registry[g.Family] = g
}

// Lookup resolves a registered family name.
func Lookup(family string) (Generator, bool) {
	g, ok := registry[family]
	return g, ok
}

// Generators lists the registered generators sorted by family name.
func Generators() []Generator {
	out := make([]Generator, 0, len(registry))
	for _, g := range registry {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// Built-in families. Each Build translates the size class into the
// family's structural parameters.
func init() {
	Register(Generator{
		Family: "chain",
		Doc:    "uniform n-task pipeline (the paper's counting argument); stresses context ordering on a serial critical path",
		Build: func(rng *rand.Rand, size Size) (*model.App, error) {
			n := [...]int{8, 16, 28, 64, 128}[size]
			return Chain(rng, n, model.FromMillis(1), 16*1024), nil
		},
	})
	Register(Generator{
		Family: "layered",
		Doc:    "layered random DAG with probabilistic inter-layer flows; stresses general scheduling and the incremental evaluator",
		Build: func(rng *rand.Rand, size Size) (*model.App, error) {
			cfg := DefaultRandomConfig()
			cfg.Tasks = [...]int{10, 20, 40, 80, 160}[size]
			cfg.Layers = [...]int{3, 5, 8, 10, 12}[size]
			return Layered(rng, cfg)
		},
	})
	Register(Generator{
		Family: "forkjoin",
		Doc:    "series of fork-join blocks (width-way parallel chains); stresses packing independent tasks into shared contexts",
		Build: func(rng *rand.Rand, size Size) (*model.App, error) {
			cfg := DefaultForkJoinConfig()
			cfg.Blocks = [...]int{1, 2, 3, 4, 6}[size]
			cfg.Width = [...]int{2, 3, 4, 6, 8}[size]
			cfg.Depth = [...]int{1, 2, 2, 3, 3}[size]
			return ForkJoin(rng, cfg)
		},
	})
	Register(Generator{
		Family: "fft",
		Doc:    "radix-2 DIT FFT butterfly ranks; stresses wide regular parallelism with tiny per-task times",
		Build: func(rng *rand.Rand, size Size) (*model.App, error) {
			return FFT(rng, [...]int{4, 8, 16, 32, 64}[size])
		},
	})
	Register(Generator{
		Family: "jpeg",
		Doc:    "baseline-JPEG encoder (fixed 15-stage structure; size is ignored); stresses a branch-join media pipeline",
		Build: func(rng *rand.Rand, _ Size) (*model.App, error) {
			return JPEG(rng), nil
		},
	})
}
