// Package apps provides the workloads of the evaluation: a synthetic
// reconstruction of the paper's 28-task motion-detection application
// (Section 5), a registry of parameterized task-graph generators (chain,
// layered, fork-join, FFT, JPEG) used by the scenario corpus and the
// stress tests, and the SynthHW hardware-point synthesizer they share.
//
// The per-task EPICURE estimates the paper used are proprietary project
// data; see DESIGN.md §3 for the substitution rationale. Every published
// structural invariant of the application is preserved exactly: the 28-node
// series-parallel topology whose linear-extension count the paper computes,
// the 76.4 ms total ARM922 software time, 5–6 Pareto-dominant hardware
// implementation points per function, and the 22.5 µs/CLB reconfiguration
// time of the Virtex-E target.
//
// # Determinism contract
//
// Every generator takes an explicit *rand.Rand and derives all randomness
// from it — no generator seeds itself, touches math/rand's global source,
// or reads any other ambient state. A generator call is therefore a pure
// function of (rng state, parameters): two calls with rngs seeded
// identically produce bit-identical applications. Because math/rand's
// generator algorithm and sequence for an explicitly constructed
// rand.New(rand.NewSource(seed)) are frozen by the Go 1 compatibility
// promise, the fingerprints of generated applications are stable across Go
// releases, operating systems, and architectures; internal/scenario pins
// them with golden-digest tests. (MotionDetection is the one
// config-seeded builder: it reconstructs a fixed published instance, so
// its MotionConfig.Seed is part of the instance's identity.)
package apps
