package apps

import (
	"math/rand"

	"repro/internal/model"
)

// MotionConfig parameterizes the synthetic motion-detection instance.
type MotionConfig struct {
	// Seed drives the deterministic synthesis of the hardware
	// implementation sets.
	Seed int64
	// TotalSW is the all-software execution time on the reference
	// processor (the paper measures 76.4 ms on an ARM922).
	TotalSW model.Time
	// BusRate is the shared-memory bus throughput in bytes/second.
	BusRate int64
}

// DefaultMotionConfig returns the published constants.
func DefaultMotionConfig() MotionConfig {
	return MotionConfig{
		Seed:    2005,
		TotalSW: model.FromMillis(76.4),
		BusRate: 80_000_000,
	}
}

// MotionDeadline is the application's real-time constraint: 40 ms/image.
const MotionDeadline = 40 * model.Millisecond

// MotionTR is the Virtex-E per-CLB reconfiguration time used in Section 5.
var MotionTR = model.FromMicros(22.5)

// MotionArch returns the paper's target architecture: an ARM922-class
// processor plus a Virtex-E-class reconfigurable circuit of nclb blocks,
// communicating through a shared-memory bus with serialized transactions.
func MotionArch(nclb int, cfg MotionConfig) *model.Arch {
	return &model.Arch{
		Name:       "arm922+virtex-e",
		Processors: []model.Processor{{Name: "arm922", Cost: 10}},
		RCs:        []model.RC{{Name: "virtex-e", NCLB: nclb, TR: MotionTR, Cost: 25}},
		Bus:        model.Bus{Rate: cfg.BusRate, Contention: true},
	}
}

// motionTask describes one stage of the pipeline before time synthesis:
// a name, a relative software weight (a fraction of TotalSW), a hardware
// affinity class, and the output volume in bytes toward its consumers.
type motionTask struct {
	name   string
	weight int // tenths of ms at the published 76.4 ms total
	class  hwClass
	outQty int64
}

type hwClass int

const (
	// pixelOp: regular image operators — parallelize extremely well.
	pixelOp hwClass = iota
	// windowOp: neighborhood operators — large speedups, more area.
	windowOp
	// irregularOp: data-dependent control flow — modest speedups.
	irregularOp
)

// imageQty is one QCIF frame (176×144 bytes), the volume flowing through
// the pixel-processing front end.
const imageQty = 176 * 144

// motionPipeline is the 28-stage object-labeling application with the exact
// series-parallel structure the paper describes: a 7-node chain, then a
// 7-node chain in parallel with a 6-node chain, the latter followed by a
// 2-node chain in parallel with one node, followed by a 5-node chain.
// Weights are tenths of milliseconds and sum to 764 (76.4 ms).
var motionPipeline = []motionTask{
	// Head chain (7): image acquisition and segmentation front end. The
	// regular image operators dominate the runtime, as in the published
	// profile where hardware acceleration of the front end brings 76.4 ms
	// down to well under the 40 ms constraint.
	{"acquire", 5, pixelOp, imageQty},
	{"grayscale", 8, pixelOp, imageQty},
	{"bg_update", 85, pixelOp, imageQty},
	{"frame_diff", 80, pixelOp, imageQty},
	{"threshold", 5, pixelOp, imageQty},
	{"erosion", 95, windowOp, imageQty},
	{"dilation", 95, windowOp, imageQty},
	// Branch A (7-chain): dense motion-field estimation.
	{"gradient_x", 80, windowOp, imageQty},
	{"gradient_y", 80, windowOp, imageQty},
	{"magnitude", 15, pixelOp, imageQty},
	{"orientation", 15, pixelOp, imageQty},
	{"smoothing", 85, windowOp, imageQty},
	{"nms", 18, windowOp, imageQty / 2},
	{"motion_mask", 8, pixelOp, imageQty / 4},
	// Branch B (6-chain): connected-component labeling.
	{"run_length", 8, irregularOp, imageQty / 2},
	{"label_pass1", 18, irregularOp, imageQty / 2},
	{"merge_table", 5, irregularOp, 4096},
	{"label_pass2", 14, irregularOp, imageQty / 2},
	{"area_filter", 5, irregularOp, 8192},
	{"bbox", 4, irregularOp, 4096},
	// Fork after bbox: a 2-chain in parallel with one node.
	{"moments", 10, pixelOp, 4096},
	{"centroids", 3, irregularOp, 1024},
	{"histogram", 8, pixelOp, 2048},
	// Tail chain (5): object matching and reporting.
	{"match", 4, irregularOp, 1024},
	{"track", 3, irregularOp, 1024},
	{"trajectory", 2, irregularOp, 1024},
	{"overlay", 3, pixelOp, imageQty},
	{"output", 3, pixelOp, imageQty},
}

// motionFlows returns the precedence edges of the pipeline (indices into
// motionPipeline). Quantities are the producer's output volume.
func motionFlows() []model.Flow {
	chain := func(flows []model.Flow, from, to int) []model.Flow {
		for i := from; i < to; i++ {
			flows = append(flows, model.Flow{From: i, To: i + 1, Qty: motionPipeline[i].outQty})
		}
		return flows
	}
	var f []model.Flow
	f = chain(f, 0, 6) // head chain 0..6
	f = append(f, model.Flow{From: 6, To: 7, Qty: motionPipeline[6].outQty})
	f = chain(f, 7, 13) // branch A 7..13
	f = append(f, model.Flow{From: 6, To: 14, Qty: motionPipeline[6].outQty})
	f = chain(f, 14, 19) // branch B 14..19
	f = append(f,
		model.Flow{From: 19, To: 20, Qty: motionPipeline[19].outQty}, // 2-chain
		model.Flow{From: 20, To: 21, Qty: motionPipeline[20].outQty},
		model.Flow{From: 19, To: 22, Qty: motionPipeline[19].outQty}, // lone node
		model.Flow{From: 21, To: 23, Qty: motionPipeline[21].outQty}, // join into tail
		model.Flow{From: 22, To: 23, Qty: motionPipeline[22].outQty},
	)
	f = chain(f, 23, 27) // tail chain 23..27
	return f
}

// MotionDetection builds the synthetic motion-detection application.
func MotionDetection(cfg MotionConfig) *model.App {
	rng := rand.New(rand.NewSource(cfg.Seed))
	app := &model.App{Name: "motion-detection"}
	for _, mt := range motionPipeline {
		sw := model.Time(mt.weight) * model.Millisecond / 10
		var hw []model.Impl
		// 5 or 6 synthesized points per function, as in EPICURE.
		n := 5 + rng.Intn(2)
		// Moderate speedups with a >100-CLB area floor: on the smallest
		// devices of the Figure 3 sweep nothing fits (all-software wall),
		// and within a context the residual hardware execution times are
		// large enough that packing independent tasks together — the
		// parallelism the paper credits for the sharp drop — pays off.
		switch mt.class {
		case pixelOp:
			hw = SynthHW(rng, sw, n, 110, 280, 11, 28)
		case windowOp:
			hw = SynthHW(rng, sw, n, 130, 400, 11, 30)
		case irregularOp:
			hw = SynthHW(rng, sw, n, 120, 320, 2.5, 7)
		}
		app.Tasks = append(app.Tasks, model.Task{
			Name: mt.name,
			Fn:   [...]string{"pixel", "window", "irregular"}[mt.class],
			SW:   sw,
			HW:   hw,
		})
	}
	scaleToTotal(app.Tasks, cfg.TotalSW)
	app.Flows = motionFlows()
	return app
}
