package apps

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/pareto"
)

func TestMotionDetectionPublishedInvariants(t *testing.T) {
	app := MotionDetection(DefaultMotionConfig())
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.N() != 28 {
		t.Fatalf("task count = %d, want 28 (paper)", app.N())
	}
	if got := app.TotalSW(); got != model.FromMillis(76.4) {
		t.Fatalf("total SW time = %v, want exactly 76.4ms (paper)", got)
	}
	for i, task := range app.Tasks {
		if len(task.HW) == 0 {
			t.Fatalf("task %d (%s) has no hardware implementation", i, task.Name)
		}
		if len(task.HW) > 6 {
			t.Fatalf("task %d has %d implementations, paper says 5-6", i, len(task.HW))
		}
		if !pareto.IsFront(task.HW) {
			t.Fatalf("task %d implementation set is not Pareto-dominant: %v", i, task.HW)
		}
	}
	if MotionTR != model.FromMicros(22.5) {
		t.Fatalf("tR = %v, want 22.5us (paper)", MotionTR)
	}
	if MotionDeadline != model.FromMillis(40) {
		t.Fatalf("deadline = %v, want 40ms (paper)", model.Time(MotionDeadline))
	}
}

// The topology must be exactly the series-parallel shape whose linear
// extensions the paper counts: head 7-chain, then 7-chain ∥ (6-chain →
// (2-chain ∥ 1) → 5-chain).
func TestMotionDetectionTopology(t *testing.T) {
	app := MotionDetection(DefaultMotionConfig())
	g := app.Precedence()
	// Sources and sinks.
	if g.InDegree(0) != 0 {
		t.Fatal("task 0 must be the unique source")
	}
	for v := 1; v < app.N(); v++ {
		if g.InDegree(v) == 0 {
			t.Fatalf("unexpected extra source %d (%s)", v, app.Tasks[v].Name)
		}
	}
	// The fork at the end of the head chain.
	if g.OutDegree(6) != 2 || !g.HasEdge(6, 7) || !g.HasEdge(6, 14) {
		t.Fatal("head chain must fork to both branches at task 6")
	}
	// Branch A is a sink-terminated chain.
	for v := 7; v < 13; v++ {
		if !g.HasEdge(v, v+1) {
			t.Fatalf("branch A missing edge %d->%d", v, v+1)
		}
	}
	if g.OutDegree(13) != 0 {
		t.Fatal("branch A must end in a sink")
	}
	// The inner fork/join around tasks 20-22.
	if !g.HasEdge(19, 20) || !g.HasEdge(20, 21) || !g.HasEdge(19, 22) {
		t.Fatal("inner fork wrong")
	}
	if !g.HasEdge(21, 23) || !g.HasEdge(22, 23) {
		t.Fatal("inner join wrong")
	}
	if g.OutDegree(27) != 0 {
		t.Fatal("tail must end in a sink")
	}
}

func TestMotionDetectionDeterministic(t *testing.T) {
	a := MotionDetection(DefaultMotionConfig())
	b := MotionDetection(DefaultMotionConfig())
	if a.N() != b.N() {
		t.Fatal("nondeterministic task count")
	}
	for i := range a.Tasks {
		if a.Tasks[i].SW != b.Tasks[i].SW || len(a.Tasks[i].HW) != len(b.Tasks[i].HW) {
			t.Fatalf("task %d differs between builds", i)
		}
		for j := range a.Tasks[i].HW {
			if a.Tasks[i].HW[j] != b.Tasks[i].HW[j] {
				t.Fatalf("impl %d/%d differs", i, j)
			}
		}
	}
}

func TestMotionArch(t *testing.T) {
	arch := MotionArch(2000, DefaultMotionConfig())
	if err := arch.Validate(); err != nil {
		t.Fatal(err)
	}
	if arch.RCs[0].NCLB != 2000 || arch.RCs[0].TR != model.FromMicros(22.5) {
		t.Fatalf("arch constants wrong: %+v", arch.RCs[0])
	}
	if !arch.Bus.Contention {
		t.Fatal("paper's bus serializes transactions")
	}
}

func TestSynthHWProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		sw := model.FromMicros(float64(100 + rng.Intn(50_000)))
		pts := SynthHW(rng, sw, 6, 40, 400, 4, 30)
		if len(pts) == 0 {
			t.Fatal("empty implementation set")
		}
		if !pareto.IsFront(pts) {
			t.Fatalf("not a Pareto front: %v", pts)
		}
		for _, p := range pts {
			if p.Time <= 0 || p.Time >= sw {
				t.Fatalf("implementation not faster than software: %v vs %v", p.Time, sw)
			}
			if p.CLBs < 40 {
				t.Fatalf("implementation below minimum area: %v", p)
			}
		}
	}
}

func TestScaleToTotalExact(t *testing.T) {
	tasks := []model.Task{{SW: 333}, {SW: 334}, {SW: 333}}
	scaleToTotal(tasks, model.FromMillis(76.4))
	var sum model.Time
	for _, task := range tasks {
		sum += task.SW
	}
	if sum != model.FromMillis(76.4) {
		t.Fatalf("sum = %v, want exactly 76.4ms", sum)
	}
}

func TestLayeredGenerator(t *testing.T) {
	app, err := Layered(rand.New(rand.NewSource(3)), DefaultRandomConfig())
	if err != nil {
		t.Fatal(err)
	}
	if app.N() != 40 {
		t.Fatalf("N = %d", app.N())
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Layered(rand.New(rand.NewSource(3)), RandomConfig{Tasks: 2, Layers: 5}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestChainGenerator(t *testing.T) {
	app := Chain(rand.New(rand.NewSource(9)), 28, model.FromMillis(1), 1024)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.N() != 28 || len(app.Flows) != 27 {
		t.Fatalf("chain shape wrong: %d tasks, %d flows", app.N(), len(app.Flows))
	}
}

func TestJPEGPipeline(t *testing.T) {
	app := JPEG(rand.New(rand.NewSource(77)))
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.N() < 10 {
		t.Fatalf("JPEG pipeline suspiciously small: %d tasks", app.N())
	}
	// Three parallel component pipelines must exist.
	names := map[string]bool{}
	for _, task := range app.Tasks {
		names[task.Name] = true
	}
	for _, want := range []string{"dct_y", "dct_cb", "dct_cr", "huffman"} {
		if !names[want] {
			t.Fatalf("missing stage %s", want)
		}
	}
}

func TestFFTGraph(t *testing.T) {
	app, err := FFT(rand.New(rand.NewSource(8)), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8-point FFT: bit-reverse + 3 ranks × 4 butterflies + collect = 14.
	if app.N() != 14 {
		t.Fatalf("N = %d, want 14", app.N())
	}
	if _, err := FFT(rand.New(rand.NewSource(6)), 6); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := FFT(rand.New(rand.NewSource(2)), 2); err == nil {
		t.Fatal("too-small FFT accepted")
	}
}

func TestForkJoinGenerator(t *testing.T) {
	cfg := DefaultForkJoinConfig()
	app, err := ForkJoin(rand.New(rand.NewSource(5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// src + blocks×(width×depth + join) tasks.
	want := 1 + cfg.Blocks*(cfg.Width*cfg.Depth+1)
	if app.N() != want {
		t.Fatalf("N = %d, want %d", app.N(), want)
	}
	g := app.Precedence()
	if g.OutDegree(0) != cfg.Width {
		t.Fatalf("source fans out %d, want %d", g.OutDegree(0), cfg.Width)
	}
	if g.OutDegree(app.N()-1) != 0 {
		t.Fatal("last join must be the sink")
	}
	if _, err := ForkJoin(rand.New(rand.NewSource(5)), ForkJoinConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestRegistryDeterminism is the generator-level determinism contract:
// every registered family at every size builds a valid application, and
// two builds from identically seeded rngs are bit-identical.
func TestRegistryDeterminism(t *testing.T) {
	gens := Generators()
	if len(gens) < 5 {
		t.Fatalf("only %d registered families", len(gens))
	}
	for _, g := range gens {
		if _, ok := Lookup(g.Family); !ok {
			t.Fatalf("Lookup(%q) failed", g.Family)
		}
		for _, size := range Sizes() {
			a, err := g.Build(rand.New(rand.NewSource(11)), size)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Family, size, err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", g.Family, size, err)
			}
			b, err := g.Build(rand.New(rand.NewSource(11)), size)
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest() != b.Digest() {
				t.Fatalf("%s/%s: nondeterministic generation", g.Family, size)
			}
		}
	}
}

func TestSizeParse(t *testing.T) {
	for _, s := range Sizes() {
		got, err := ParseSize(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseSize(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Fatal("unknown size accepted")
	}
}
