package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// ForkJoinConfig parameterizes the fork-join tree generator.
type ForkJoinConfig struct {
	// Blocks is the number of fork-join blocks composed in series.
	Blocks int
	// Width is the number of parallel branches inside each block.
	Width int
	// Depth is the chain length of each branch.
	Depth int
	// SWMin/SWMax bound the software execution times.
	SWMin, SWMax model.Time
	// QtyMax bounds flow volumes in bytes.
	QtyMax int64
}

// DefaultForkJoinConfig returns a medium-sized generator setting.
func DefaultForkJoinConfig() ForkJoinConfig {
	return ForkJoinConfig{
		Blocks: 3,
		Width:  4,
		Depth:  2,
		SWMin:  model.FromMicros(300),
		SWMax:  model.FromMillis(4),
		QtyMax: 48 * 1024,
	}
}

// ForkJoin generates a series of fork-join blocks: a source task forks into
// Width parallel Depth-chains which join again, Blocks times in sequence.
// The shape maximizes exploitable task parallelism at the joins — it
// stresses the explorer's ability to pack independent hardware tasks into
// one context (computing in parallel) versus spreading them across
// processors. The graph is a pure function of the rng state and cfg.
func ForkJoin(rng *rand.Rand, cfg ForkJoinConfig) (*model.App, error) {
	if cfg.Blocks < 1 || cfg.Width < 1 || cfg.Depth < 1 {
		return nil, fmt.Errorf("apps: invalid fork-join config: %d blocks, %d width, %d depth", cfg.Blocks, cfg.Width, cfg.Depth)
	}
	if cfg.SWMin <= 0 || cfg.SWMax < cfg.SWMin || cfg.QtyMax < 0 {
		return nil, fmt.Errorf("apps: invalid fork-join bounds: sw [%v, %v], qty max %d", cfg.SWMin, cfg.SWMax, cfg.QtyMax)
	}
	app := &model.App{Name: fmt.Sprintf("forkjoin-%dx%dx%d", cfg.Blocks, cfg.Width, cfg.Depth)}
	add := func(name string) int {
		sw := cfg.SWMin + model.Time(rng.Int63n(int64(cfg.SWMax-cfg.SWMin+1)))
		app.Tasks = append(app.Tasks, model.Task{
			Name: name,
			SW:   sw,
			HW:   SynthHW(rng, sw, 5+rng.Intn(2), 60, 350, 5, 28),
		})
		return len(app.Tasks) - 1
	}
	flow := func(from, to int) {
		app.Flows = append(app.Flows, model.Flow{From: from, To: to, Qty: rng.Int63n(cfg.QtyMax + 1)})
	}

	head := add("src")
	for b := 0; b < cfg.Blocks; b++ {
		join := -1
		tails := make([]int, 0, cfg.Width)
		for w := 0; w < cfg.Width; w++ {
			prev := head
			for d := 0; d < cfg.Depth; d++ {
				t := add(fmt.Sprintf("b%d_w%d_d%d", b, w, d))
				flow(prev, t)
				prev = t
			}
			tails = append(tails, prev)
		}
		join = add(fmt.Sprintf("join%d", b))
		for _, t := range tails {
			flow(t, join)
		}
		head = join
	}
	return app, app.Validate()
}
