package apps

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/pareto"
)

// SynthHW generates a Pareto-dominant set of nPoints hardware
// implementations for a task with software time sw. The smallest point
// occupies minCLBs blocks with speedup minSpeedup; successive points grow
// in area and speedup up to maxSpeedup, with multiplicative jitter drawn
// from rng. The result is dominance-filtered, so it may contain fewer than
// nPoints entries in degenerate draws.
func SynthHW(rng *rand.Rand, sw model.Time, nPoints, minCLBs, maxCLBs int, minSpeedup, maxSpeedup float64) []model.Impl {
	if nPoints < 1 {
		return nil
	}
	pts := make([]model.Impl, 0, nPoints)
	for i := 0; i < nPoints; i++ {
		f := 0.0
		if nPoints > 1 {
			f = float64(i) / float64(nPoints-1)
		}
		clbs := minCLBs + int(f*float64(maxCLBs-minCLBs))
		clbs += rng.Intn(1 + clbs/10)
		speedup := minSpeedup + f*(maxSpeedup-minSpeedup)
		speedup *= 0.9 + 0.2*rng.Float64()
		t := model.Time(float64(sw) / speedup)
		if t < model.Microsecond {
			t = model.Microsecond
		}
		pts = append(pts, model.Impl{CLBs: clbs, Time: t})
	}
	return pareto.Front(pts)
}

// scaleToTotal rescales the software times of tasks so they sum exactly to
// total (the residue of integer rounding is folded into the last task).
func scaleToTotal(tasks []model.Task, total model.Time) {
	var sum model.Time
	for i := range tasks {
		sum += tasks[i].SW
	}
	if sum == 0 {
		return
	}
	var acc model.Time
	for i := range tasks {
		if i == len(tasks)-1 {
			tasks[i].SW = total - acc
			break
		}
		scaled := model.Time(int64(tasks[i].SW) * int64(total) / int64(sum))
		tasks[i].SW = scaled
		acc += scaled
	}
}
