// Command dsexplore is the general design-space exploration CLI: it maps an
// application (JSON, or the built-in motion-detection benchmark) onto a
// reconfigurable architecture (JSON, or the built-in ARM922+Virtex-E) and
// prints the best mapping found, its timing breakdown, and optionally a
// Gantt chart of the schedule.
//
// With -runs above 1 it fans that many independent annealing runs out over
// -j workers (deterministic per-run seeds seed+i), reports the cross-run
// statistics, and prints the overall best mapping.
//
// The search strategy is selectable (-strategy {sa,ga,list,brute,
// portfolio}); every strategy runs behind the unified search engine and
// scores solutions through the shared objective layer, whose weights are
// adjustable (-w-area, -w-reconf). Each run also archives the area/makespan
// Pareto front of the solutions it visits; the front is printed after the
// run (and merged across runs with -runs > 1).
//
// Usage:
//
//	dsexplore -motion [-nclb 2000] [-gantt]
//	dsexplore -motion -runs 100 -j 8
//	dsexplore -motion -strategy portfolio -w-area 0.001
//	dsexplore -app app.json -arch arch.json [-deadline 40] [-gantt]
//	dsexplore -dump-app app.json -dump-arch arch.json    # emit built-ins
//	dsexplore -motion -runs 20 -server http://localhost:8080
//
// With -server the exploration is submitted to a dsed job server instead
// of running locally: the application and architecture ship inline, the
// per-run results stream back live, and repeated submissions are answered
// from the server's memoized result cache. Ctrl-C cancels the remote
// computation. (-gantt/-assign need the mapping itself, which the wire
// summary does not carry, so they are local-only.)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/dse"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/objective"
	"repro/internal/pareto"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsexplore: ")
	var (
		appPath    = flag.String("app", "", "application JSON file")
		archPath   = flag.String("arch", "", "architecture JSON file")
		motion     = flag.Bool("motion", false, "use the built-in motion-detection benchmark")
		nclb       = flag.Int("nclb", 2000, "FPGA capacity for the built-in architecture")
		iters      = flag.Int("iters", 5000, "annealing iterations")
		seed       = flag.Int64("seed", 1, "random seed (base of the seed stream when -runs > 1)")
		runs       = flag.Int("runs", 1, "independent annealing runs (best reported)")
		workers    = flag.Int("j", runtime.NumCPU(), "parallel runs when -runs > 1")
		quality    = flag.Float64("quality", 0.05, "Lam schedule quality (λ): smaller = slower, better")
		deadlineMS = flag.Float64("deadline", 0, "real-time constraint in ms (0 = none)")
		gantt      = flag.Bool("gantt", false, "print the schedule as a Gantt listing")
		assign     = flag.Bool("assign", true, "print the per-task assignment table")
		dumpApp    = flag.String("dump-app", "", "write the built-in application JSON here and exit")
		dumpArch   = flag.String("dump-arch", "", "write the built-in architecture JSON here and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the exploration to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		strategy   = flag.String("strategy", "sa", "search strategy: sa, ga, list, brute, portfolio, bandit")
		schedPol   = flag.String("sched", "", "composite-strategy scheduling policy: rr or ucb (empty = the kind's default: portfolio=rr, bandit=ucb)")
		schedSlice = flag.Int("sched-slice", 0, "UCB budget-slice length in driver steps (0 = engine default)")
		transfer   = flag.Bool("transfer", false, "with -server: warm-start the job from the server's best cached outcome on the same instance pair")
		wArea      = flag.Float64("w-area", 0, "objective weight on occupied hardware area (cost units per CLB)")
		wReconf    = flag.Float64("w-reconf", 0, "objective weight on reconfiguration time (cost units per ms, initial+dynamic)")
		server     = flag.String("server", "", "submit the job to this dsed server (e.g. http://localhost:8080) instead of running locally")
		batch      = flag.Int("batch", 0, "speculative batch width for SA moves (<=1 = serial; changes the trajectory deterministically)")
		batchWk    = flag.Int("batch-workers", 0, "goroutines scoring each speculated batch (0 = GOMAXPROCS; pure throughput, never changes results)")
		batchKn    = flag.String("batch-kernel", "", "batch scoring backend: auto (default), shadow, or lanes — bit-identical results, throughput only")
		earlyStop  = flag.Float64("early-stop", 0, "adaptive early stop: end a run when best cost improves < this fraction over -early-stop-window steps (0 = off)")
		earlyStopW = flag.Int("early-stop-window", 32, "sliding-window length (driver steps) of -early-stop")
	)
	flag.Parse()

	kernel, kerr := core.ParseBatchKernel(*batchKn)
	if kerr != nil {
		log.Fatal(kerr)
	}

	stopProfiles := prof.Start(*cpuprofile, *memprofile)
	defer stopProfiles()

	mcfg := apps.DefaultMotionConfig()
	if *dumpApp != "" || *dumpArch != "" {
		if *dumpApp != "" {
			writeJSON(*dumpApp, func(f *os.File) error { return model.WriteApp(f, apps.MotionDetection(mcfg)) })
			fmt.Printf("wrote %s\n", *dumpApp)
		}
		if *dumpArch != "" {
			writeJSON(*dumpArch, func(f *os.File) error { return model.WriteArch(f, apps.MotionArch(*nclb, mcfg)) })
			fmt.Printf("wrote %s\n", *dumpArch)
		}
		return
	}

	var (
		app  *model.App
		arch *model.Arch
		err  error
	)
	switch {
	case *motion || (*appPath == "" && *archPath == ""):
		app = apps.MotionDetection(mcfg)
		arch = apps.MotionArch(*nclb, mcfg)
		if *deadlineMS == 0 {
			*deadlineMS = apps.MotionDeadline.Millis()
		}
	default:
		if *appPath == "" || *archPath == "" {
			log.Fatal("need both -app and -arch (or -motion)")
		}
		if app, err = model.LoadApp(*appPath); err != nil {
			log.Fatal(err)
		}
		if arch, err = model.LoadArch(*archPath); err != nil {
			log.Fatal(err)
		}
	}

	if *server != "" {
		spec := dse.JobSpec{
			App: app, Arch: arch,
			Strategy: *strategy, Runs: *runs, Seed: *seed, Workers: *workers,
			SAIters: *iters, Quality: *quality, DeadlineMS: *deadlineMS,
			WArea: *wArea, WReconf: *wReconf,
			Batch: *batch, BatchWorkers: *batchWk, BatchKernel: *batchKn,
			EarlyStopEpsilon: *earlyStop, EarlyStopWindow: *earlyStopW,
			Sched: *schedPol, SchedSlice: *schedSlice, Transfer: *transfer,
		}
		runRemote(*server, spec)
		return
	}

	cfg := core.DefaultConfig()
	cfg.MaxIters = *iters
	cfg.Seed = *seed
	cfg.Quality = *quality
	cfg.Deadline = model.FromMillis(*deadlineMS)
	cfg.Batch = *batch
	cfg.BatchWorkers = *batchWk
	cfg.BatchKernel = kernel

	scfg := search.DefaultConfig()
	scfg.SA = cfg
	scfg.FrontMetrics = []objective.Metric{objective.HWArea, objective.Makespan}
	scfg.Sched = *schedPol
	scfg.SchedSlice = *schedSlice
	if *transfer {
		// A local dsexplore invocation holds no result cache to donate
		// from; transfer is meaningful against a dsed server.
		log.Print("warning: -transfer has no effect without -server (no local result cache)")
	}
	if *earlyStop > 0 {
		scfg.EarlyStopEpsilon = *earlyStop
		scfg.EarlyStopWindow = *earlyStopW
	}
	if *wArea != 0 || *wReconf != 0 {
		scal := objective.FixedArch()
		scal.Weights[objective.HWArea] = *wArea
		scal.Weights[objective.InitialReconfig] = *wReconf
		scal.Weights[objective.DynamicReconfig] = *wReconf
		scfg.Objective = &scal
	}
	factory, err := search.NewFactory(*strategy, app, arch, scfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application %q (%d tasks) on %q, strategy %s\n\n", app.Name, app.N(), arch.Name, *strategy)

	var (
		best  *sched.Mapping
		b     sched.Result
		front *pareto.NArchive
	)
	start := time.Now()
	if *runs > 1 {
		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSig()
		agg, err := runner.Run(ctx, app, runner.Options{
			Runs:     *runs,
			Workers:  *workers,
			BaseSeed: *seed,
		}, runner.Strategy(factory))
		if err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		if agg.Completed == 0 {
			log.Fatal("interrupted before any run completed")
		}
		elapsed := time.Since(start)
		best, b, front = agg.Best, agg.BestEval, agg.Front
		fmt.Printf("  runs completed          : %d/%d (%d workers)\n", agg.Completed, agg.Requested, *workers)
		fmt.Printf("  execution time          : mean %.3f ms, median %.3f ms, p95 %.3f ms\n",
			agg.MakespanMS.Mean(), agg.MakespanMS.Median(), agg.MakespanMS.Quantile(0.95))
		fmt.Printf("  best execution time     : %v (run %d, seed %d)\n", b.Makespan, agg.BestRun, agg.BestSeed)
		if cfg.Deadline > 0 {
			fmt.Printf("  constraint %v met    : %d/%d runs\n", cfg.Deadline, agg.DeadlineMet, agg.Completed)
		}
		fmt.Printf("  contexts                : mean %.2f, best %d\n", agg.Contexts.Mean(), b.Contexts)
		fmt.Printf("  area/time archive       : %d non-dominated points\n", agg.Archive.Len())
		fmt.Printf("  optimizer wall time     : %v total, %v per run\n\n",
			elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(agg.Completed)).Round(time.Millisecond))
	} else {
		out, err := search.Run(context.Background(), factory, *seed, 0)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		best, b, front = out.Best, out.Eval, out.Front
		fmt.Printf("  best execution time     : %v (cost %.4f)\n", b.Makespan, out.Cost)
		if cfg.Deadline > 0 {
			fmt.Printf("  constraint %v met    : %v\n", cfg.Deadline, out.MetDeadline)
		}
		fmt.Printf("  contexts                : %d\n", b.Contexts)
		fmt.Printf("  optimizer wall time     : %v\n", elapsed.Round(time.Millisecond))
	}
	fmt.Printf("  compute sw/hw           : %v / %v\n", b.ComputeSW, b.ComputeHW)
	fmt.Printf("  bus communication       : %v\n", b.Comm)
	fmt.Printf("  reconfiguration         : initial %v + dynamic %v\n\n", b.InitialReconfig, b.DynamicReconfig)

	if front != nil && front.Len() > 0 {
		fmt.Println("area/makespan Pareto front (non-dominated solutions visited):")
		tb := report.NewTable("clbs", "makespan_ms")
		for _, p := range front.Points() {
			tb.AddRow(int(p.V[0]), p.V[1])
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if *assign {
		tb := report.NewTable("task", "name", "resource", "impl", "clbs", "time")
		for t := 0; t < app.N(); t++ {
			pl := best.Assign[t]
			task := &app.Tasks[t]
			switch pl.Kind {
			case model.KindProcessor:
				tb.AddRow(t, task.Name, fmt.Sprintf("proc%d", pl.Res), "-", "-", task.SW.String())
			case model.KindRC:
				im := task.HW[best.Impl[t]]
				tb.AddRow(t, task.Name, fmt.Sprintf("rc%d/ctx%d", pl.Res, pl.Ctx),
					best.Impl[t], im.CLBs, im.Time.String())
			case model.KindASIC:
				im := task.HW[best.Impl[t]]
				tb.AddRow(t, task.Name, fmt.Sprintf("asic%d", pl.Res),
					best.Impl[t], im.CLBs, im.Time.String())
			}
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if *gantt {
		e := sched.NewEvaluator(app, arch)
		if _, err := e.Evaluate(best); err != nil {
			log.Fatal(err)
		}
		tb := report.NewTable("lane", "start", "end", "activity")
		for _, en := range sched.Gantt(e, best) {
			tb.AddRow(en.Lane, en.Start.String(), en.End.String(), en.Label)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// runRemote ships the instance to a dsed server as a synchronous
// streaming job, prints each completed run as it arrives, and closes with
// the server-side summary (cache hits included). The spec carries every
// result-shaping knob of the local path (strategy, budget, quality,
// objective weights, deadline), so the remote run optimizes the same
// cost as the identical local invocation. Interrupting drops the
// connection, which cancels the remote computation.
func runRemote(base string, spec dse.JobSpec) {
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	client := dse.NewClient(base)
	if err := client.Health(ctx); err != nil {
		log.Fatalf("server %s unreachable: %v", base, err)
	}
	fmt.Printf("application %q (%d tasks) on %q, strategy %s — served by %s\n\n",
		spec.App.Name, spec.App.N(), spec.Arch.Name, spec.Strategy, base)
	start := time.Now()
	summary, err := client.RunJob(ctx, spec, func(ev dse.JobEvent) {
		cached := ""
		if ev.Cached {
			cached = "  [cache]"
		}
		fmt.Printf("  run %3d (seed %d): cost %.4f, %.3f ms, %d contexts%s\n",
			ev.Run, ev.Seed, ev.Cost, ev.MakespanMS, ev.Contexts, cached)
	})
	if err != nil {
		if summary == nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninterrupted (%v) — partial summary:\n", err)
	}
	fmt.Printf("\n  runs completed          : %d/%d\n", summary.Completed, summary.Requested)
	fmt.Printf("  best cost               : %.4f (run %d, seed %d)\n", summary.BestCost, summary.BestRun, summary.BestSeed)
	fmt.Printf("  best execution time     : %.3f ms (mean %.3f ms)\n", summary.BestMakespanMS, summary.MeanMakespanMS)
	fmt.Printf("  area/makespan front     : %d non-dominated points\n", summary.FrontSize)
	fmt.Printf("  evaluations             : %d (%d runs from cache)\n", summary.Evaluations, summary.CacheHits)
	if summary.TransferRuns > 0 {
		fmt.Printf("  transfer donor          : %s (cost %.4f, %d runs seeded)\n",
			summary.TransferKey, summary.TransferCost, summary.TransferRuns)
	}
	fmt.Printf("  server wall time        : %.1f ms (round trip %v)\n",
		summary.WallMS, time.Since(start).Round(time.Millisecond))
}

func writeJSON(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
}
