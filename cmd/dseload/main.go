// Command dseload is an open-loop load generator for the dsed job
// service and the fleet coordinator: it replays a weighted mix of the
// scenario corpus at a configurable arrival rate (or closed-loop
// concurrency), repeats the identical request sequence for -passes
// passes (pass one cold, pass two warm), and reports per-pass p50/p90/
// p99 latency, error rate, cache-hit ratio, and a result digest — the
// sha256 over every distinct job's deterministic quality fields — so
// two dseload runs against different topologies (one dsed vs a fleet)
// can be compared for bit-identical results with -compare.
//
// The request sequence is a pure function of (-mix, -mix-seed, -n,
// -seeds), so replays are exactly reproducible: same specs, same base
// seeds, same order.
//
// Usage:
//
//	dseload -addr http://127.0.0.1:9400 -rps 20 -duration 10s
//	dseload -n 60 -passes 2 -report fleet.json
//	dseload -n 60 -report single.json -compare fleet.json   # digest equality
//	dseload -rps 10 -duration 10s -max-errors 0 -min-hits 1 # CI smoke gate
//
// Exit codes: 0 success, 1 runtime failure, 2 flag-usage error,
// 3 assertion failed (-max-errors / -min-hits / -min-hit-ratio /
// -compare).
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/dse"
	"repro/internal/scenario"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "target base URL (a dsed worker or a fleet coordinator)")
		mixFlag     = flag.String("mix", "fig2-small=3,pipeline-fft-small=2,forkjoin-tiny=1", "weighted scenario mix, name=weight comma-separated")
		strategy    = flag.String("strategy", "sa", "search strategy for every job")
		runs        = flag.Int("runs", 2, "independent runs per job")
		maxSteps    = flag.Int("max-steps", 8, "driver step budget per run")
		saIters     = flag.Int("sa-iters", 0, "SA iteration override (0 = scenario default)")
		rps         = flag.Float64("rps", 10, "open-loop arrival rate in jobs/s (0 = closed loop over -concurrency workers)")
		concurrency = flag.Int("concurrency", 8, "closed-loop worker count (used when -rps 0)")
		duration    = flag.Duration("duration", 10*time.Second, "per-pass length when -n is 0 (request count = rps × duration)")
		nFlag       = flag.Int("n", 0, "exact requests per pass (overrides -duration; use for digest-comparable replays)")
		passes      = flag.Int("passes", 2, "replay passes over the identical sequence (pass 1 cold, pass 2+ warm)")
		seeds       = flag.Int("seeds", 0, "base-seed rotation: 0 = unique seed per request index (fully cold first pass), N>0 = rotate seeds 1..N")
		mixSeed     = flag.Int64("mix-seed", 1, "PRNG seed of the weighted scenario draw")
		poll        = flag.Duration("poll", 20*time.Millisecond, "job status poll interval")
		timeout     = flag.Duration("timeout", 120*time.Second, "per-job timeout")
		reportPath  = flag.String("report", "", "write the JSON report here")
		comparePath = flag.String("compare", "", "compare per-pass result digests against this previously written report (exit 3 on mismatch)")
		maxErrors   = flag.Int("max-errors", -1, "fail (exit 3) when any pass exceeds this many errors (-1 = no assertion)")
		minHits     = flag.Int("min-hits", 0, "fail (exit 3) when total cache hits across passes fall below this")
		minHitRatio = flag.Float64("min-hit-ratio", 0, "fail (exit 3) when the final pass's cache-hit ratio falls below this")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dseload: %v\n", err)
		os.Exit(2)
	}
	n := *nFlag
	if n <= 0 {
		if *rps <= 0 {
			fmt.Fprintln(os.Stderr, "dseload: closed loop (-rps 0) needs an explicit -n")
			os.Exit(2)
		}
		n = int(math.Round(*rps * duration.Seconds()))
		if n < 1 {
			n = 1
		}
	}
	if *passes < 1 {
		*passes = 1
	}

	seq := buildSequence(mix, n, *seeds, *mixSeed, *strategy, *runs, *maxSteps, *saIters)
	client := dse.NewClient(*addr)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dseload: target %s unhealthy: %v\n", *addr, err)
		os.Exit(1)
	}
	fleetWorkers := 0
	if ws, err := client.Workers(ctx); err == nil {
		fleetWorkers = len(ws)
	}

	rep := Report{
		Target: *addr, Generated: time.Now().UTC().Format(time.RFC3339),
		Mix: mix, Strategy: *strategy, Runs: *runs, MaxSteps: *maxSteps, SAIters: *saIters,
		RPS: *rps, Concurrency: *concurrency, N: n, Passes: *passes,
		Seeds: *seeds, MixSeed: *mixSeed, FleetWorkers: fleetWorkers,
	}
	topology := "single dsed"
	if fleetWorkers > 0 {
		topology = fmt.Sprintf("fleet of %d workers", fleetWorkers)
	}
	fmt.Printf("dseload: %s (%s), %d requests/pass × %d passes, mix %s\n",
		*addr, topology, n, *passes, *mixFlag)

	for p := 0; p < *passes; p++ {
		pr := runPass(ctx, client, seq, passName(p, *passes), *rps, *concurrency, *poll, *timeout)
		rep.PassResults = append(rep.PassResults, pr)
		fmt.Printf("  pass %-5s %4d req  %3d err  p50 %7.1fms  p99 %7.1fms  hit %5.1f%%  %6.1f req/s  digest %s\n",
			pr.Name, pr.Requests, pr.Errors, pr.LatencyMS.P50, pr.LatencyMS.P99,
			100*pr.HitRatio, pr.AchievedRPS, short(pr.ResultDigest))
		for _, s := range pr.ErrorSamples {
			fmt.Printf("    error: %s\n", s)
		}
	}

	if *reportPath != "" {
		if err := writeReport(*reportPath, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "dseload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dseload: wrote %s\n", *reportPath)
	}

	failed := false
	totalHits := 0
	for _, pr := range rep.PassResults {
		totalHits += pr.CacheHits
		if *maxErrors >= 0 && pr.Errors > *maxErrors {
			fmt.Fprintf(os.Stderr, "dseload: FAIL pass %s had %d errors (max %d)\n", pr.Name, pr.Errors, *maxErrors)
			failed = true
		}
		if pr.Inconsistent > 0 {
			fmt.Fprintf(os.Stderr, "dseload: FAIL pass %s: %d specs returned diverging quality fields (determinism violation)\n", pr.Name, pr.Inconsistent)
			failed = true
		}
	}
	if *minHits > 0 && totalHits < *minHits {
		fmt.Fprintf(os.Stderr, "dseload: FAIL %d total cache hits (min %d)\n", totalHits, *minHits)
		failed = true
	}
	if *minHitRatio > 0 && len(rep.PassResults) > 0 {
		last := rep.PassResults[len(rep.PassResults)-1]
		if last.HitRatio < *minHitRatio {
			fmt.Fprintf(os.Stderr, "dseload: FAIL final pass hit ratio %.3f (min %.3f)\n", last.HitRatio, *minHitRatio)
			failed = true
		}
	}
	if *comparePath != "" {
		if err := compareReports(*comparePath, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "dseload: FAIL %v\n", err)
			failed = true
		} else {
			fmt.Printf("dseload: result digests bit-identical to %s\n", *comparePath)
		}
	}
	if failed {
		os.Exit(3)
	}
}

// MixEntry is one weighted scenario of the replay mix.
type MixEntry struct {
	Scenario string `json:"scenario"`
	Weight   int    `json:"weight"`
}

// Quantiles summarizes a latency distribution in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// PassResult is one replay pass's measurements.
type PassResult struct {
	Name          string    `json:"name"`
	Requests      int       `json:"requests"`
	Errors        int       `json:"errors"`
	ErrorRate     float64   `json:"errorRate"`
	DistinctSpecs int       `json:"distinctSpecs"`
	LatencyMS     Quantiles `json:"latencyMS"`
	CompletedRuns int       `json:"completedRuns"`
	CacheHits     int       `json:"cacheHits"`
	HitRatio      float64   `json:"hitRatio"`
	WallMS        float64   `json:"wallMS"`
	AchievedRPS   float64   `json:"achievedRPS"`
	// ResultDigest is sha256 over the sorted (spec → quality fields)
	// lines of every successful job: identical digests mean bit-identical
	// results, whatever topology served them.
	ResultDigest string `json:"resultDigest"`
	// Inconsistent counts specs whose repeated occurrences within the
	// pass disagreed on quality fields — always 0 unless the determinism
	// invariant is broken.
	Inconsistent int      `json:"inconsistent"`
	ErrorSamples []string `json:"errorSamples,omitempty"`
}

// Report is the dseload JSON artifact.
type Report struct {
	Target       string       `json:"target"`
	Generated    string       `json:"generated"`
	Mix          []MixEntry   `json:"mix"`
	Strategy     string       `json:"strategy"`
	Runs         int          `json:"runs"`
	MaxSteps     int          `json:"maxSteps"`
	SAIters      int          `json:"saIters,omitempty"`
	RPS          float64      `json:"rps"`
	Concurrency  int          `json:"concurrency"`
	N            int          `json:"n"`
	Passes       int          `json:"passes"`
	Seeds        int          `json:"seeds"`
	MixSeed      int64        `json:"mixSeed"`
	FleetWorkers int          `json:"fleetWorkers"`
	PassResults  []PassResult `json:"passResults"`
}

// parseMix parses "name=weight,..." against the scenario registry.
func parseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			w, err = strconv.Atoi(wstr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad mix weight in %q", part)
			}
		}
		if _, ok := scenario.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown scenario %q (have %v)", name, scenario.Names())
		}
		mix = append(mix, MixEntry{Scenario: name, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// buildSequence materializes the deterministic request schedule: a
// weighted scenario draw from a seeded PRNG plus a per-index base seed.
func buildSequence(mix []MixEntry, n, seeds int, mixSeed int64, strategy string, runs, maxSteps, saIters int) []dse.JobSpec {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	rng := rand.New(rand.NewSource(mixSeed))
	out := make([]dse.JobSpec, n)
	for i := range out {
		pick := rng.Intn(total)
		name := mix[0].Scenario
		for _, m := range mix {
			if pick < m.Weight {
				name = m.Scenario
				break
			}
			pick -= m.Weight
		}
		seed := int64(i + 1)
		if seeds > 0 {
			seed = int64(1 + i%seeds)
		}
		out[i] = dse.JobSpec{
			Scenario: name, Strategy: strategy, Runs: runs,
			MaxSteps: maxSteps, SAIters: saIters, Seed: seed,
		}
	}
	return out
}

func passName(p, total int) string {
	if total == 2 {
		return [2]string{"cold", "warm"}[p]
	}
	return "pass-" + strconv.Itoa(p+1)
}

// outcome is one request's measurement.
type outcome struct {
	idx       int
	latency   time.Duration
	err       error
	hits      int
	completed int
	quality   string
}

// runPass replays the sequence once: open-loop paced arrivals when
// rps > 0 (a goroutine per arrival, no admission gate — that is what
// open-loop means), otherwise a closed loop of concurrency workers.
func runPass(ctx context.Context, client *dse.Client, seq []dse.JobSpec, name string, rps float64, concurrency int, poll, timeout time.Duration) PassResult {
	results := make([]outcome, len(seq))
	var wg sync.WaitGroup
	start := time.Now()

	doJob := func(i int) {
		defer wg.Done()
		jctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		t0 := time.Now()
		st, err := client.SubmitJob(jctx, seq[i])
		if err == nil {
			st, err = client.WaitJob(jctx, st.ID, poll)
		}
		lat := time.Since(t0)
		o := outcome{idx: i, latency: lat, err: err}
		if err == nil && st.State != dse.JobDone {
			o.err = fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
		}
		if o.err == nil && st.Summary != nil {
			o.hits = st.Summary.CacheHits
			o.completed = st.Summary.Completed
			o.quality = qualityLine(st.Summary)
		}
		results[i] = o
	}

	if rps > 0 {
		interval := time.Duration(float64(time.Second) / rps)
		tick := time.NewTicker(interval)
		for i := range seq {
			wg.Add(1)
			go doJob(i)
			if i < len(seq)-1 {
				<-tick.C
			}
		}
		tick.Stop()
	} else {
		if concurrency < 1 {
			concurrency = 1
		}
		var next atomic.Int64
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(seq) {
						return
					}
					wg.Add(1)
					doJob(i)
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)

	pr := PassResult{Name: name, Requests: len(seq), WallMS: float64(wall.Microseconds()) / 1e3}
	var lats []float64
	perSpec := map[string]string{}
	for _, o := range results {
		if o.err != nil {
			pr.Errors++
			if len(pr.ErrorSamples) < 5 {
				pr.ErrorSamples = append(pr.ErrorSamples, o.err.Error())
			}
			continue
		}
		lats = append(lats, float64(o.latency.Microseconds())/1e3)
		pr.CacheHits += o.hits
		pr.CompletedRuns += o.completed
		key := specKey(&seq[o.idx])
		if prev, seen := perSpec[key]; seen {
			if prev != o.quality {
				pr.Inconsistent++
			}
		} else {
			perSpec[key] = o.quality
		}
	}
	pr.DistinctSpecs = len(perSpec)
	pr.ErrorRate = float64(pr.Errors) / float64(max(1, pr.Requests))
	if pr.CompletedRuns > 0 {
		pr.HitRatio = float64(pr.CacheHits) / float64(pr.CompletedRuns)
	}
	if wall > 0 {
		pr.AchievedRPS = float64(pr.Requests) / wall.Seconds()
	}
	pr.LatencyMS = quantiles(lats)
	pr.ResultDigest = digest(perSpec)
	return pr
}

// specKey identifies a job spec within the digest (everything the
// result is a function of).
func specKey(s *dse.JobSpec) string {
	return fmt.Sprintf("%s|%s|r%d|m%d|i%d|s%d", s.Scenario, s.Strategy, s.Runs, s.MaxSteps, s.SAIters, s.Seed)
}

// qualityLine flattens a summary's deterministic quality fields —
// delivery metadata (cache hits, wall time) deliberately excluded.
func qualityLine(s *dse.JobSummary) string {
	return strings.Join([]string{
		strconv.FormatFloat(s.BestCost, 'g', -1, 64),
		strconv.Itoa(s.BestRun),
		strconv.FormatInt(s.BestSeed, 10),
		strconv.FormatFloat(s.BestMakespanMS, 'g', -1, 64),
		strconv.FormatFloat(s.MeanMakespanMS, 'g', -1, 64),
		strconv.Itoa(s.FrontSize),
		strconv.Itoa(s.DeadlineMet),
		strconv.Itoa(s.Evaluations),
	}, "|")
}

// digest hashes the sorted spec→quality lines.
func digest(perSpec map[string]string) string {
	keys := make([]string, 0, len(perSpec))
	for k := range perSpec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s -> %s\n", k, perSpec[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func quantiles(lats []float64) Quantiles {
	if len(lats) == 0 {
		return Quantiles{}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	return Quantiles{
		P50: q(0.50), P90: q(0.90), P99: q(0.99),
		Mean: sum / float64(len(lats)), Min: lats[0], Max: lats[len(lats)-1],
	}
}

func writeReport(path string, rep *Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// compareReports asserts per-pass result-digest equality with a
// previously written report — the fleet-vs-single bit-identity proof.
func compareReports(path string, rep *Report) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var other Report
	if err := json.Unmarshal(b, &other); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	n := min(len(rep.PassResults), len(other.PassResults))
	if n == 0 {
		return fmt.Errorf("%s has no passes to compare", path)
	}
	for i := 0; i < n; i++ {
		a, o := rep.PassResults[i], other.PassResults[i]
		if a.ResultDigest != o.ResultDigest {
			return fmt.Errorf("pass %s result digest %s differs from %s in %s (results not bit-identical)",
				a.Name, short(a.ResultDigest), short(o.ResultDigest), path)
		}
	}
	return nil
}

func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
