// Command dsecount reproduces the solution-space size analysis of Section 5
// exactly: the number of total orders of the 28-task motion-detection graph
// and the context-placement combination counts, each cross-checked against
// the constants printed in the paper (and, where small enough, against a
// brute-force linear-extension count).
package main

import (
	"fmt"
	"log"
	"math/big"
	"os"

	"repro/internal/combi"
	"repro/internal/graph"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsecount: ")

	n := combi.ComputePaperNumbers()
	paper := map[string]int64{
		"chain of 28, 2 context changes: C(28,2)":     378,
		"chain of 28, 6 context changes: C(28,6)":     376740,
		"total orders of the 28-node graph 3·C(21,7)": 348840,
		"orders × C(28,2)":                            131861520,
		"orders × C(28,4)":                            7142499000,
	}
	rows := []struct {
		label string
		got   *big.Int
	}{
		{"chain of 28, 2 context changes: C(28,2)", n.ChainCombos2},
		{"chain of 28, 6 context changes: C(28,6)", n.ChainCombos6},
		{"total orders of the 28-node graph 3·C(21,7)", n.Orders},
		{"orders × C(28,2)", n.Combos2},
		{"orders × C(28,4)", n.Combos4},
	}

	fmt.Println("Section 5 solution-space counts (computed from first principles)")
	fmt.Println()
	tb := report.NewTable("quantity", "computed", "paper", "match")
	allOK := true
	for _, r := range rows {
		want := big.NewInt(paper[r.label])
		ok := r.got.Cmp(want) == 0
		allOK = allOK && ok
		tb.AddRow(r.label, r.got.String(), want.String(), ok)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Brute-force cross-check of the inner branch (14 nodes: 6-chain →
	// (2-chain ∥ node) → 5-chain must have exactly 3 linear extensions).
	g := graph.New(14)
	chain := func(from, to int) {
		for i := from; i < to; i++ {
			g.AddEdge(i, i+1, 0) //nolint:errcheck
		}
	}
	chain(0, 5)
	g.AddEdge(5, 6, 0) //nolint:errcheck
	g.AddEdge(6, 7, 0) //nolint:errcheck
	g.AddEdge(5, 8, 0) //nolint:errcheck
	g.AddEdge(7, 9, 0) //nolint:errcheck
	g.AddEdge(8, 9, 0) //nolint:errcheck
	chain(9, 13)
	brute := combi.BruteLinearExtensions(g)
	fmt.Printf("\nbrute-force check, branch B (14 nodes): %v linear extensions (closed form: 3)\n", brute)

	if !allOK || brute.Cmp(big.NewInt(3)) != 0 {
		log.Fatal("MISMATCH against the paper's published counts")
	}
	fmt.Println("\nall counts match the paper exactly")
}
