// Command dsesweep regenerates Figure 3 of the paper: average execution
// time, reconfiguration times (initial and dynamic) and number of contexts
// versus FPGA size, each point averaged over many annealing runs of the
// motion-detection application.
//
// Usage:
//
//	dsesweep [-sizes 100,200,...] [-runs 100] [-splits=false] [-csv out.csv]
//
// With -splits=false contexts are created only through capacity overflow
// (the paper's mechanism); this is the mode that reproduces the published
// curve, including the single-context plateau at large devices.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsesweep: ")
	var (
		sizesFlag = flag.String("sizes", "100,200,400,600,800,1200,1600,2000,3000,4000,5000,7000,10000", "comma-separated FPGA sizes (CLBs)")
		runs      = flag.Int("runs", 100, "annealing runs per size (paper: 100)")
		iters     = flag.Int("iters", 5000, "annealing iterations per run")
		splits    = flag.Bool("splits", false, "enable the context-splitting extension move (paper mode: off)")
		csvPath   = flag.String("csv", "", "write results to this CSV file")
		noplot    = flag.Bool("noplot", false, "suppress the ASCII plot")
	)
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := apps.DefaultMotionConfig()
	app := apps.MotionDetection(mcfg)

	fmt.Printf("Figure 3 — device-size sweep on %q (%d runs/size, %d iterations, splits=%v)\n\n",
		app.Name, *runs, *iters, *splits)

	tb := report.NewTable("nclb", "exec_ms", "init_reconf_ms", "dyn_reconf_ms", "contexts", "met_40ms", "best_ms")
	var xs, yExec, yCtx, yRcI, yRcD []float64
	start := time.Now()
	for _, nclb := range sizes {
		arch := apps.MotionArch(nclb, mcfg)
		var exec, rcI, rcD, ctxs, met float64
		best := 1e18
		for s := 0; s < *runs; s++ {
			cfg := core.DefaultConfig()
			cfg.Seed = int64(s)
			cfg.MaxIters = *iters
			cfg.Deadline = apps.MotionDeadline
			cfg.EnableCtxSplit = *splits
			res, err := core.Explore(app, arch, cfg)
			if err != nil {
				log.Fatal(err)
			}
			b := res.BestEval
			m := b.Makespan.Millis()
			exec += m
			if m < best {
				best = m
			}
			if res.MetDeadline {
				met++
			}
			rcI += b.InitialReconfig.Millis()
			rcD += b.DynamicReconfig.Millis()
			ctxs += float64(b.Contexts)
		}
		n := float64(*runs)
		tb.AddRow(nclb, exec/n, rcI/n, rcD/n, ctxs/n,
			fmt.Sprintf("%.0f/%d", met, *runs), best)
		xs = append(xs, float64(nclb))
		yExec = append(yExec, exec/n)
		yCtx = append(yCtx, ctxs/n)
		yRcI = append(yRcI, rcI/n)
		yRcD = append(yRcD, rcD/n)
	}

	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))

	if !*noplot {
		fmt.Println("\nexecution time / reconfiguration times (ms) and contexts vs FPGA size:")
		err := report.Plot(os.Stdout, 78, 16,
			report.Series{Name: "execution time (ms)", X: xs, Y: yExec},
			report.Series{Name: "number of contexts", X: xs, Y: yCtx},
			report.Series{Name: "initial reconfiguration (ms)", X: xs, Y: yRcI},
			report.Series{Name: "dynamic reconfiguration (ms)", X: xs, Y: yRcD},
		)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tb.CSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results written to %s\n", *csvPath)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
