// Command dsesweep regenerates Figure 3 of the paper: average execution
// time, reconfiguration times (initial and dynamic) and number of contexts
// versus FPGA size, each point averaged over many annealing runs of the
// motion-detection application.
//
// Usage:
//
//	dsesweep [-sizes 100,200,...] [-runs 100] [-j 8] [-splits=false] [-csv out.csv]
//	dsesweep -strategy portfolio -w-area 0.001     # multi-objective sweep
//
// The runs of each sweep point are independent, so they fan out over -j
// workers (default: all cores) through the multi-run engine; per-seed
// results are identical whatever -j is. With -splits=false contexts are
// created only through capacity overflow (the paper's mechanism); this is
// the mode that reproduces the published curve, including the
// single-context plateau at large devices. Interrupting the sweep (Ctrl-C)
// renders the table of the points completed so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsesweep: ")
	var (
		sizesFlag  = flag.String("sizes", "100,200,400,600,800,1200,1600,2000,3000,4000,5000,7000,10000", "comma-separated FPGA sizes (CLBs)")
		runs       = flag.Int("runs", 100, "annealing runs per size (paper: 100)")
		iters      = flag.Int("iters", 5000, "annealing iterations per run")
		workers    = flag.Int("j", runtime.NumCPU(), "parallel annealing runs")
		baseSeed   = flag.Int64("seed", 0, "base of the per-run seed stream (run i uses seed+i)")
		splits     = flag.Bool("splits", false, "enable the context-splitting extension move (paper mode: off)")
		csvPath    = flag.String("csv", "", "write results to this CSV file")
		noplot     = flag.Bool("noplot", false, "suppress the ASCII plot")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		strategy   = flag.String("strategy", "sa", "search strategy per run: sa, ga, list, brute, portfolio, bandit")
		schedPol   = flag.String("sched", "", "composite-strategy scheduling policy: rr or ucb (empty = the kind's default)")
		schedSlice = flag.Int("sched-slice", 0, "UCB budget-slice length in driver steps (0 = engine default)")
		transfer   = flag.Bool("transfer", false, "warm-start each sweep point from the best cached outcome on the same instance pair (needs -cache; earlier points seed later ones of the same size)")
		wArea      = flag.Float64("w-area", 0, "objective weight on occupied hardware area (cost units per CLB)")
		wReconf    = flag.Float64("w-reconf", 0, "objective weight on reconfiguration time (cost units per ms, initial+dynamic)")
		cacheOn    = flag.Bool("cache", false, "memoize run outcomes across sweep points (repeated sizes/seeds become cache hits)")
		batch      = flag.Int("batch", 0, "speculative batch width for SA moves (<=1 = serial; changes the trajectory deterministically)")
		batchWk    = flag.Int("batch-workers", 0, "goroutines scoring each speculated batch (0 = GOMAXPROCS; never changes results)")
		batchKn    = flag.String("batch-kernel", "", "batch scoring backend: auto (default), shadow, or lanes — bit-identical results, throughput only")
		earlyStop  = flag.Float64("early-stop", 0, "adaptive early stop: end a run when best cost improves < this fraction over -early-stop-window steps (0 = off)")
		earlyStopW = flag.Int("early-stop-window", 32, "sliding-window length (driver steps) of -early-stop")
	)
	flag.Parse()

	kernel, err := core.ParseBatchKernel(*batchKn)
	if err != nil {
		log.Fatal(err)
	}

	stopProfiles := prof.Start(*cpuprofile, *memprofile)
	defer stopProfiles()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := apps.DefaultMotionConfig()
	app := apps.MotionDetection(mcfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cache *runner.ResultCache
	if *cacheOn {
		cache = runner.NewResultCache(0, 0)
	}

	fmt.Printf("Figure 3 — device-size sweep on %q (%d runs/size, %d iterations, %d workers, splits=%v, strategy %s)\n\n",
		app.Name, *runs, *iters, *workers, *splits, *strategy)

	tb := report.NewTable("nclb", "exec_ms", "init_reconf_ms", "dyn_reconf_ms", "contexts", "met_40ms", "best_ms", "p95_ms")
	var xs, yExec, yCtx, yRcI, yRcD []float64
	start := time.Now()
	for _, nclb := range sizes {
		arch := apps.MotionArch(nclb, mcfg)
		cfg := core.DefaultConfig()
		cfg.MaxIters = *iters
		cfg.Deadline = apps.MotionDeadline
		cfg.EnableCtxSplit = *splits
		cfg.Batch = *batch
		cfg.BatchWorkers = *batchWk
		cfg.BatchKernel = kernel
		scfg := search.DefaultConfig()
		scfg.SA = cfg
		scfg.Sched = *schedPol
		scfg.SchedSlice = *schedSlice
		if *earlyStop > 0 {
			scfg.EarlyStopEpsilon = *earlyStop
			scfg.EarlyStopWindow = *earlyStopW
		}
		if *wArea != 0 || *wReconf != 0 {
			scal := objective.FixedArch()
			scal.Weights[objective.HWArea] = *wArea
			scal.Weights[objective.InitialReconfig] = *wReconf
			scal.Weights[objective.DynamicReconfig] = *wReconf
			scfg.Objective = &scal
		}
		factory, err := search.NewFactory(*strategy, app, arch, scfg)
		if err != nil {
			log.Fatal(err)
		}
		if *transfer {
			// Warm-start from the best cached donor on this (app, arch)
			// pair; must precede WithCache so the donor key reaches the
			// cache keys. Distinct sizes are distinct arch digests, so a
			// point only inherits from runs of its own size.
			runner.ApplyTransfer(factory, cache)
		}
		fn, err := runner.WithCache(runner.CacheConfig{Cache: cache, Factory: factory})
		if err != nil {
			log.Fatal(err)
		}
		agg, err := runner.Run(ctx, app, runner.Options{
			Runs:     *runs,
			Workers:  *workers,
			BaseSeed: *baseSeed,
		}, fn)
		if err != nil && ctx.Err() == nil {
			log.Fatal(err)
		}
		if agg.Completed == 0 {
			break // interrupted before the first run of this point finished
		}
		tb.AddRow(nclb,
			agg.MakespanMS.Mean(),
			agg.InitialReconfigMS.Mean(),
			agg.DynamicReconfigMS.Mean(),
			agg.Contexts.Mean(),
			fmt.Sprintf("%d/%d", agg.DeadlineMet, agg.Completed),
			agg.MakespanMS.Min(),
			agg.MakespanMS.Quantile(0.95))
		xs = append(xs, float64(nclb))
		yExec = append(yExec, agg.MakespanMS.Mean())
		yCtx = append(yCtx, agg.Contexts.Mean())
		yRcI = append(yRcI, agg.InitialReconfigMS.Mean())
		yRcD = append(yRcD, agg.DynamicReconfigMS.Mean())
		if ctx.Err() != nil {
			break
		}
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted — showing completed sweep points")
	}

	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if cache != nil {
		st := cache.Stats()
		fmt.Printf("result cache: %d hits, %d misses, %d resident\n", st.Hits, st.Misses, st.Entries)
	}

	if !*noplot && len(xs) > 1 {
		fmt.Println("\nexecution time / reconfiguration times (ms) and contexts vs FPGA size:")
		err := report.Plot(os.Stdout, 78, 16,
			report.Series{Name: "execution time (ms)", X: xs, Y: yExec},
			report.Series{Name: "number of contexts", X: xs, Y: yCtx},
			report.Series{Name: "initial reconfiguration (ms)", X: xs, Y: yRcI},
			report.Series{Name: "dynamic reconfiguration (ms)", X: xs, Y: yRcD},
		)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tb.CSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results written to %s\n", *csvPath)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
