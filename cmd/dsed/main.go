// Command dsed is the design-space-exploration job server: it serves
// async exploration jobs over HTTP, streams per-run progress as NDJSON,
// and answers repeated jobs from the sharded memoized result cache —
// resubmitting an identical (scenario|models, strategy, seed, budget)
// job returns bit-identical quality fields without recomputation. With
// -snapshot the cache survives restarts: it is restored on boot and
// saved periodically, and again on SIGTERM/interrupt.
//
// Endpoints (see internal/serve) live under /v1: POST /v1/jobs,
// GET /v1/jobs[/{id}[/stream]], DELETE /v1/jobs/{id}, POST /v1/run
// (synchronous streaming; disconnecting cancels the run),
// GET /v1/scenarios, GET /v1/cache, GET /v1/metrics (Prometheus text),
// GET /v1/healthz. The unversioned paths of the original API remain as
// deprecated aliases.
//
// Usage:
//
//	dsed                                    # serve on :8080, cache enabled
//	dsed -addr :9090 -max-jobs 4
//	dsed -cache-size 16384 -cache-ttl 1h -policy 2q
//	dsed -snapshot /var/lib/dsed/cache.snap -snapshot-interval 5m
//	dsed -smoke                             # self-test: submit fig2-small twice,
//	                                        # assert the resubmission is a cache hit,
//	                                        # then restart from a snapshot and assert
//	                                        # the cache survived
//
// Submit a job with curl:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"scenario":"fig2-small","runs":10}'
//	curl -s localhost:8080/v1/jobs/job-000001/stream     # NDJSON progress
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001  # cancel
//	curl -s localhost:8080/v1/metrics                    # Prometheus scrape
//
// Exit codes: 0 success, 1 serve/smoke failure, 2 flag-usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/dse"
	"repro/internal/fleet"
	"repro/internal/memo"
	"repro/internal/runner"
	"repro/internal/serve"
)

// runCoordinator serves the fleet coordinator until SIGTERM/interrupt.
func runCoordinator(addr string, beatTimeout time.Duration) {
	c := fleet.NewCoordinator(fleet.Options{HeartbeatTimeout: beatTimeout, Logf: log.Printf})
	defer c.Close()
	httpSrv := &http.Server{Addr: addr, Handler: c.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	log.Printf("coordinating on %s (heartbeat timeout %v)", addr, beatTimeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("coordinator shut down")
}

// fleetWorkerID derives the worker's stable fleet identity: an explicit
// -worker-id, else hostname:port from the listen address.
func fleetWorkerID(explicit, addr string) string {
	if explicit != "" {
		return explicit
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "dsed"
	}
	_, port, err := net.SplitHostPort(addr)
	if err != nil || port == "" {
		return host
	}
	return host + ":" + port
}

// advertiseURL derives the callback URL workers hand the coordinator.
// Wildcard listen hosts advertise the loopback address — correct for
// single-host fleets (the smoke/test topology); multi-host deployments
// pass -advertise explicitly.
func advertiseURL(explicit, addr string) string {
	if explicit != "" {
		return strings.TrimRight(explicit, "/")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsed: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		noCache   = flag.Bool("no-cache", false, "disable the memoized result cache")
		cacheSize = flag.Int("cache-size", 8192, "result-cache capacity (entries)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "result-cache entry TTL (0 = never expire)")
		policy    = flag.String("policy", "lru", "cache eviction policy: lru, lfu, or 2q")
		staleFor  = flag.Duration("stale-for", 0, "with -cache-ttl, keep serving expired entries for this long while a background refresh recomputes (0 = off)")
		snapPath  = flag.String("snapshot", "", "cache snapshot file: restored on boot, saved every -snapshot-interval and on shutdown (empty = no persistence)")
		snapEvery = flag.Duration("snapshot-interval", 5*time.Minute, "how often to save the cache snapshot (requires -snapshot)")
		maxJobs   = flag.Int("max-jobs", 2, "concurrently executing jobs (excess queues)")
		maxDone   = flag.Int("max-finished", 1000, "finished job records retained (oldest evicted beyond this)")
		smoke     = flag.Bool("smoke", false, "run the self-test (cold job, cache-hit resubmit, snapshot restart, /metrics scrape) and exit")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator: route /v1/jobs across registered dsed workers instead of computing locally")
		beatTimeout = flag.Duration("heartbeat-timeout", 5*time.Second, "coordinator: declare a worker dead after this heartbeat silence and re-queue its jobs")
		join        = flag.String("join", "", "worker: register with the fleet coordinator at this base URL (e.g. http://host:9400)")
		advertise   = flag.String("advertise", "", "worker: base URL the coordinator dials back (default derived from -addr on 127.0.0.1)")
		workerID    = flag.String("worker-id", "", "worker: stable fleet identity (default hostname:port)")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "worker: heartbeat interval to the coordinator")
		drainFor    = flag.Duration("drain-timeout", 30*time.Second, "worker: on SIGTERM, wait at most this long for in-flight jobs to finish after deregistering")
	)
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *beatTimeout)
		return
	}

	pol, err := memo.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsed: %v\n", err)
		os.Exit(2)
	}

	var cache *runner.ResultCache
	if !*noCache {
		cache = runner.NewResultCacheWith(runner.ResultCacheOptions{
			Capacity: *cacheSize,
			TTL:      *cacheTTL,
			StaleFor: *staleFor,
			Policy:   pol,
		})
	}
	srv := serve.New(serve.Options{Cache: cache, MaxJobs: *maxJobs, MaxFinished: *maxDone, Logf: log.Printf})

	if *smoke {
		if err := runSmoke(srv, pol, *snapPath); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("dsed smoke: PASS")
		return
	}

	if cache != nil && *snapPath != "" {
		restoreSnapshot(cache, *snapPath)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cache != nil && *snapPath != "" && *snapEvery > 0 {
		go func() {
			tick := time.NewTicker(*snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					saveSnapshot(cache, *snapPath)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Fleet membership: register with the coordinator and heartbeat until
	// the drain sequence stops the agent.
	var agent *fleet.Agent
	agentCtx, stopAgent := context.WithCancel(context.Background())
	defer stopAgent()
	if *join != "" {
		agent = &fleet.Agent{
			Coordinator: strings.TrimRight(*join, "/"),
			ID:          fleetWorkerID(*workerID, *addr),
			URL:         advertiseURL(*advertise, *addr),
			Interval:    *heartbeat,
			Logf:        log.Printf,
		}
		go agent.Run(agentCtx)
	}

	go func() {
		<-ctx.Done()
		if agent != nil {
			// Graceful drain: leave the ring first (new jobs route to the
			// survivors), refuse local submissions, finish what is in
			// flight, and only then stop heartbeating and close the
			// listener — the coordinator's watchers poll job status through
			// the whole window.
			log.Printf("SIGTERM: draining (deregister, finish in-flight, timeout %v)", *drainFor)
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
			srv.Drain()
			if err := agent.Deregister(drainCtx); err != nil {
				log.Printf("warning: deregister: %v", err)
			}
			if err := srv.WaitIdle(drainCtx); err != nil {
				log.Printf("warning: drain timeout with %d jobs in flight", srv.ActiveJobs())
			}
			cancel()
			stopAgent()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	if agent != nil {
		log.Printf("serving on %s (cache %v, policy %s, max-jobs %d, fleet %s as %s)",
			*addr, !*noCache, pol, *maxJobs, *join, fleetWorkerID(*workerID, *addr))
	} else {
		log.Printf("serving on %s (cache %v, policy %s, max-jobs %d)", *addr, !*noCache, pol, *maxJobs)
	}
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if cache != nil && *snapPath != "" {
		// Final save after the listener has drained: the snapshot includes
		// every job that completed before shutdown.
		saveSnapshot(cache, *snapPath)
	}
	log.Printf("shut down")
}

// restoreSnapshot warm-starts the cache from path. Every failure mode —
// missing file, truncation, corruption, version skew — degrades to a
// cold cache with a logged warning; a bad snapshot must never prevent
// the server from starting.
func restoreSnapshot(cache *runner.ResultCache, path string) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		log.Printf("snapshot %s: not found, starting cold", path)
		return
	}
	if err != nil {
		log.Printf("warning: snapshot %s unreadable (%v), starting cold", path, err)
		return
	}
	defer f.Close()
	n, err := cache.Restore(f)
	if err != nil {
		log.Printf("warning: snapshot %s rejected (%v), starting cold", path, err)
		return
	}
	log.Printf("snapshot %s: restored %d cached results", path, n)
}

// saveSnapshot writes the cache to path atomically (tmp file + rename),
// so a crash mid-save leaves the previous snapshot intact.
func saveSnapshot(cache *runner.ResultCache, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("warning: snapshot save: %v", err)
		return
	}
	if err := cache.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		log.Printf("warning: snapshot save: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		log.Printf("warning: snapshot save: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		log.Printf("warning: snapshot save: %v", err)
		return
	}
	log.Printf("snapshot %s: saved %d cached results", path, cache.Len())
}

// runSmoke is the CI self-test. Three acts:
//
//  1. Cold job on a fresh server, identical resubmission answered from
//     cache with bit-identical quality fields.
//  2. Snapshot the cache, boot a second server restored from the file
//     (a simulated kill/restart), and assert the resubmitted job is a
//     pure cache hit with the same summary.
//  3. Scrape /v1/metrics on the restarted server and assert non-zero
//     per-shard hit counters.
//
// snapPath selects the snapshot file; empty uses a temp file.
func runSmoke(srv *serve.Server, pol memo.Policy, snapPath string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()
	spec := dse.JobSpec{Scenario: "fig2-small", Strategy: "sa", Runs: 4, MaxSteps: 10}

	// Act 1: cold compute, warm resubmit.
	base, closeA, err := serveLoopback(srv)
	if err != nil {
		return err
	}
	defer closeA()
	client := dse.NewClient(base)
	if err := client.Health(ctx); err != nil {
		return err
	}
	cold, coldWall, err := submitAndWait(ctx, client, spec)
	if err != nil {
		return fmt.Errorf("cold job: %w", err)
	}
	if cold.Summary.CacheHits != 0 {
		return fmt.Errorf("cold job reported %d cache hits", cold.Summary.CacheHits)
	}
	warm, warmWall, err := submitAndWait(ctx, client, spec)
	if err != nil {
		return fmt.Errorf("warm job: %w", err)
	}
	if warm.Summary.CacheHits != spec.Runs {
		return fmt.Errorf("warm job hit %d/%d runs", warm.Summary.CacheHits, spec.Runs)
	}
	if err := summariesMatch(cold.Summary, warm.Summary); err != nil {
		return fmt.Errorf("warm job diverged: %w", err)
	}
	fmt.Printf("fig2-small × %d runs: cold %v (best cost %.4f), warm %v from cache (%d hits)\n",
		spec.Runs, coldWall.Round(time.Millisecond), cold.Summary.BestCost,
		warmWall.Round(time.Millisecond), warm.Summary.CacheHits)

	// Act 2: snapshot, "kill", restart from the file, resubmit.
	if snapPath == "" {
		f, err := os.CreateTemp("", "dsed-smoke-*.snap")
		if err != nil {
			return err
		}
		snapPath = f.Name()
		f.Close()
		defer os.Remove(snapPath)
	}
	saveSnapshot(srv.Cache(), snapPath)
	closeA()

	cache2 := runner.NewResultCacheWith(runner.ResultCacheOptions{Capacity: 8192, Policy: pol})
	restoreSnapshot(cache2, snapPath)
	if cache2.Len() == 0 {
		return fmt.Errorf("restart: snapshot %s restored 0 entries", snapPath)
	}
	srv2 := serve.New(serve.Options{Cache: cache2, MaxJobs: 2, Logf: log.Printf})
	base2, closeB, err := serveLoopback(srv2)
	if err != nil {
		return err
	}
	defer closeB()
	client2 := dse.NewClient(base2)
	restarted, restartWall, err := submitAndWait(ctx, client2, spec)
	if err != nil {
		return fmt.Errorf("post-restart job: %w", err)
	}
	if restarted.Summary.CacheHits != spec.Runs {
		return fmt.Errorf("post-restart job hit %d/%d runs — snapshot did not survive the restart", restarted.Summary.CacheHits, spec.Runs)
	}
	if err := summariesMatch(cold.Summary, restarted.Summary); err != nil {
		return fmt.Errorf("post-restart job diverged from the original: %w", err)
	}
	fmt.Printf("restart from %s: %v, %d/%d runs from the restored cache\n",
		snapPath, restartWall.Round(time.Millisecond), restarted.Summary.CacheHits, spec.Runs)

	// Act 3: the metrics endpoint reports the hits.
	body, err := scrape(ctx, base2+"/v1/metrics")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	if !strings.Contains(body, `dse_cache_hits_total{shard=`) {
		return fmt.Errorf("metrics scrape missing per-shard hit counters:\n%s", body)
	}
	hits := cache2.Stats().Hits
	if hits == 0 {
		return fmt.Errorf("restored cache reports zero hits after a fully-cached job")
	}
	fmt.Printf("metrics: %d cache hits across %d shards\n", hits, len(cache2.Stats().Shards))
	return nil
}

func serveLoopback(srv *serve.Server) (base string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { httpSrv.Close() }, nil
}

func submitAndWait(ctx context.Context, client *dse.Client, spec dse.JobSpec) (*dse.JobStatus, time.Duration, error) {
	start := time.Now()
	st, err := client.SubmitJob(ctx, spec)
	if err != nil {
		return nil, 0, err
	}
	st, err = client.WaitJob(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		return nil, 0, err
	}
	if st.State != dse.JobDone {
		return nil, 0, fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	return st, time.Since(start), nil
}

// summariesMatch compares the quality fields the acceptance criteria
// pin as bit-identical across cache hits and restarts.
func summariesMatch(a, b *dse.JobSummary) error {
	if a.BestCost != b.BestCost || a.BestMakespanMS != b.BestMakespanMS || a.FrontSize != b.FrontSize {
		return fmt.Errorf("cold %+v vs %+v", a, b)
	}
	return nil
}

func scrape(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return string(b), nil
}
