// Command dsed is the design-space-exploration job server: it serves
// async exploration jobs over HTTP, streams per-run progress as NDJSON,
// and answers repeated jobs from the sharded memoized result cache —
// resubmitting an identical (scenario|models, strategy, seed, budget)
// job returns bit-identical quality fields without recomputation.
//
// Endpoints (see internal/serve): POST /jobs, GET /jobs[/{id}[/stream]],
// DELETE /jobs/{id}, POST /run (synchronous streaming; disconnecting
// cancels the run), GET /scenarios, GET /cache, GET /healthz.
//
// Usage:
//
//	dsed                                    # serve on :8080, cache enabled
//	dsed -addr :9090 -max-jobs 4
//	dsed -cache-size 16384 -cache-ttl 1h
//	dsed -smoke                             # self-test: submit fig2-small twice,
//	                                        # assert the resubmission is a cache hit
//
// Submit a job with curl:
//
//	curl -s -X POST localhost:8080/jobs -d '{"scenario":"fig2-small","runs":10}'
//	curl -s localhost:8080/jobs/job-000001/stream     # NDJSON progress
//	curl -s -X DELETE localhost:8080/jobs/job-000001  # cancel
//
// Exit codes: 0 success, 1 serve/smoke failure, 2 flag-usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/dse"
	"repro/internal/runner"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsed: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		noCache   = flag.Bool("no-cache", false, "disable the memoized result cache")
		cacheSize = flag.Int("cache-size", 8192, "result-cache capacity (entries)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "result-cache entry TTL (0 = never expire)")
		maxJobs   = flag.Int("max-jobs", 2, "concurrently executing jobs (excess queues)")
		maxDone   = flag.Int("max-finished", 1000, "finished job records retained (oldest evicted beyond this)")
		smoke     = flag.Bool("smoke", false, "run the self-test (serve on a loopback port, submit fig2-small twice, assert a cache hit) and exit")
	)
	flag.Parse()

	var cache *runner.ResultCache
	if !*noCache {
		cache = runner.NewResultCache(*cacheSize, *cacheTTL)
	}
	srv := serve.New(serve.Options{Cache: cache, MaxJobs: *maxJobs, MaxFinished: *maxDone, Logf: log.Printf})

	if *smoke {
		if err := runSmoke(srv); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("dsed smoke: PASS")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	log.Printf("serving on %s (cache %v, max-jobs %d)", *addr, !*noCache, *maxJobs)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down")
}

// runSmoke is the CI self-test: an in-process server on a loopback port,
// one scenario job computed cold, the identical job resubmitted, and the
// resubmission asserted to be answered from the cache with bit-identical
// quality fields.
func runSmoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	client := dse.NewClient("http://" + ln.Addr().String())
	if err := client.Health(ctx); err != nil {
		return err
	}
	spec := dse.JobSpec{Scenario: "fig2-small", Strategy: "sa", Runs: 4, MaxSteps: 10}

	submit := func() (*dse.JobStatus, time.Duration, error) {
		start := time.Now()
		st, err := client.SubmitJob(ctx, spec)
		if err != nil {
			return nil, 0, err
		}
		st, err = client.WaitJob(ctx, st.ID, 20*time.Millisecond)
		if err != nil {
			return nil, 0, err
		}
		if st.State != dse.JobDone {
			return nil, 0, fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
		}
		return st, time.Since(start), nil
	}

	cold, coldWall, err := submit()
	if err != nil {
		return fmt.Errorf("cold job: %w", err)
	}
	if cold.Summary.CacheHits != 0 {
		return fmt.Errorf("cold job reported %d cache hits", cold.Summary.CacheHits)
	}
	warm, warmWall, err := submit()
	if err != nil {
		return fmt.Errorf("warm job: %w", err)
	}
	if warm.Summary.CacheHits != spec.Runs {
		return fmt.Errorf("warm job hit %d/%d runs", warm.Summary.CacheHits, spec.Runs)
	}
	c, w := cold.Summary, warm.Summary
	if c.BestCost != w.BestCost || c.BestMakespanMS != w.BestMakespanMS || c.FrontSize != w.FrontSize {
		return fmt.Errorf("warm job diverged: cold %+v, warm %+v", c, w)
	}
	fmt.Printf("fig2-small × %d runs: cold %v (best cost %.4f), warm %v from cache (%d hits)\n",
		spec.Runs, coldWall.Round(time.Millisecond), c.BestCost, warmWall.Round(time.Millisecond), w.CacheHits)
	return nil
}
