// Command dsebench runs the scenario corpus through the unified strategy
// engine and reports per-cell quality and throughput: for every selected
// (scenario, strategy) pair it fans the scenario's budgeted runs out over
// the parallel multi-run engine and records best scalarized cost, best and
// mean makespan, merged Pareto-front size, evaluation count, evals/s and
// wall time. Results render as an aligned table and persist as JSON/CSV —
// the BENCH_PR4.json trajectory CI archives per commit.
//
// Against a baseline file the run becomes a regression gate: cells whose
// best cost worsens by more than -threshold, whose evals/s drops by more
// than -threshold below the baseline (gated only for cells whose baseline
// measurement ran ≥1 s — report.ThroughputGateMinWallMS — since
// millisecond rates are noise), or that disappear fail the run with exit
// code 3. The throughput gate makes the committed baseline
// machine-specific: regenerate it (make bench-baseline) when the
// reference machine or build flags change.
//
// With -cache every cell runs behind the sharded memoized result cache
// and is then run a second, cache-warm time: the warm pass must reproduce
// the cold pass's quality fields bit-for-bit (the run is a pure function
// of its key) and the row records the warm wall time and hit count — the
// cold-vs-warm trajectory BENCH_PR5.json archives.
//
// -sched selects the composite cells' scheduling policy (rr or ucb) and
// -sched-slice the UCB budget-slice length; -transfer warm-starts
// warmable cells from the best cached outcome on the same instance pair.
// -sched-gate 0.05 compares the matrix's bandit rows against its
// portfolio rows — the bandit must match or beat the round-robin
// portfolio on at least half the scenarios and never be more than 5%
// worse, else exit 3 (the `make bench-check` adaptive-scheduling leg).
//
// -batch runs the SA cells with speculative batched move evaluation (a
// different but deterministic trajectory, so batched results compare only
// against batched baselines); -early-stop/-early-stop-window enable the
// adaptive early stop. -append merges this invocation's rows into an
// existing -json file, so a matrix can be assembled in slices; -baseline
// then gates the whole merged file, not just this invocation's rows.
// -diff OLD.json NEW.json runs nothing: it prints the per-cell evals/s
// and best-cost deltas between two result files (`make bench-diff`).
//
// Usage:
//
//	dsebench -list                              # the scenario catalog
//	dsebench                                    # full corpus × sa,list
//	dsebench -scenarios layered,paper-fig2 -strategies sa,ga,list -runs 5 -j 8
//	dsebench -smoke -json BENCH_PR5.json        # CI: tiny corpus, fast budgets
//	dsebench -smoke -cache                      # cold vs warm cell times
//	dsebench -smoke -baseline bench/BENCH_BASELINE.json -threshold 0.20
//	dsebench -scenarios layered-xl -strategies sa -batch 8 -json b.json -append
//	dsebench -diff bench/BENCH_BASELINE.json BENCH_PR8.json
//
// Exit codes: 0 success, 1 run error, 2 flag-usage error (the flag
// package's convention), 3 regression vs baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsebench: ")
	var (
		list       = flag.Bool("list", false, "print the scenario catalog and exit")
		sel        = flag.String("scenarios", "", "comma-separated scenario or family names (empty = whole corpus)")
		strategies = flag.String("strategies", "sa,list", "comma-separated strategy names (sa,ga,list,brute,portfolio,bandit)")
		runs       = flag.Int("runs", 0, "independent runs per cell (0 = the scenario's budget)")
		workers    = flag.Int("j", runtime.NumCPU(), "parallel runs per cell")
		seed       = flag.Int64("seed", 0, "base of the per-run seed streams")
		maxSteps   = flag.Int("max-steps", 0, "cap driver steps per run (0 = scenario budget)")
		smoke      = flag.Bool("smoke", false, "smoke mode: tiny/small scenarios only, 2 runs per cell")
		jsonPath   = flag.String("json", "", "write results as JSON to this file")
		csvPath    = flag.String("csv", "", "write results as CSV to this file")
		baseline   = flag.String("baseline", "", "compare best costs against this JSON baseline")
		threshold  = flag.Float64("threshold", 0.20, "relative best-cost worsening that counts as a regression")
		cacheOn    = flag.Bool("cache", false, "memoize run outcomes and rerun each cell cache-warm (records warm_ms and hits)")
		cacheSize  = flag.Int("cache-size", 8192, "result-cache capacity in entries (with -cache)")
		verbose    = flag.Bool("v", false, "print each cell as it completes")
		batch      = flag.Int("batch", 0, "speculative batch width for SA cells (<=1 = serial)")
		batchWk    = flag.Int("batch-workers", 0, "goroutines scoring each speculated batch (0 = GOMAXPROCS; never changes results)")
		batchKn    = flag.String("batch-kernel", "", "batch scoring backend: auto (default), shadow, or lanes — bit-identical results, throughput only")
		earlyStop  = flag.Float64("early-stop", 0, "adaptive early stop: end a run when best cost improves < this fraction over -early-stop-window steps (0 = off)")
		earlyStopW = flag.Int("early-stop-window", 32, "sliding-window length (driver steps) of -early-stop")
		appendJSON = flag.Bool("append", false, "merge rows into an existing -json file instead of overwriting it")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the matrix to this file")
		diffOld    = flag.String("diff", "", "diff mode: print per-cell evals/s and best-cost deltas from this old result file to the NEW.json positional argument; no cells are run")
		schedPol   = flag.String("sched", "", "composite-cell scheduling policy: rr or ucb (empty = each kind's default: portfolio=rr, bandit=ucb)")
		schedSlice = flag.Int("sched-slice", 0, "UCB budget-slice length in driver steps (0 = engine default)")
		transfer   = flag.Bool("transfer", false, "warm-start warmable cells from the best cached outcome on the same instance pair (implies -cache's result cache, without the warm rerun)")
		schedGate  = flag.Float64("sched-gate", 0, "gate: bandit best cost must match or beat portfolio on >= half the scenarios and never be more than this fraction worse (0 = off; matrix must contain both strategies); exit 3 on failure")
	)
	flag.Parse()

	if *list {
		printCatalog()
		return
	}
	if *diffOld != "" {
		if flag.NArg() != 1 {
			log.Fatal("usage: dsebench -diff OLD.json NEW.json")
		}
		oldFile, err := report.LoadBench(*diffOld)
		if err != nil {
			log.Fatal(err)
		}
		newFile, err := report.LoadBench(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s\n", *diffOld, flag.Arg(0))
		report.DiffBench(os.Stdout, oldFile, newFile)
		return
	}

	scens, err := scenario.Select(*sel)
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := core.ParseBatchKernel(*batchKn)
	if err != nil {
		log.Fatal(err)
	}
	stopProfile := prof.Start(*cpuprofile, "")
	defer stopProfile()

	opts := scenario.MatrixOptions{
		Strategies:   scenario.SplitComma(*strategies),
		Runs:         *runs,
		Workers:      *workers,
		BaseSeed:     *seed,
		MaxSteps:     *maxSteps,
		Batch:        *batch,
		BatchWorkers: *batchWk,
		BatchKernel:  kernel,
	}
	if *earlyStop > 0 {
		opts.EarlyStopEpsilon = *earlyStop
		opts.EarlyStopWindow = *earlyStopW
	}
	opts.Sched = *schedPol
	opts.SchedSlice = *schedSlice
	opts.Transfer = *transfer
	if *cacheOn || *transfer {
		// -transfer needs the result cache as its donor index, but only
		// -cache asks for the warm verification rerun.
		opts.Cache = runner.NewResultCache(*cacheSize, 0)
		opts.Warm = *cacheOn
	}
	if *smoke {
		// The CI job's contract: a corpus slice small enough to finish in
		// seconds under the race detector, still spanning ≥3 families.
		var tiny []*scenario.Scenario
		for _, s := range scens {
			if s.Size <= apps.Small {
				tiny = append(tiny, s)
			}
		}
		scens = tiny
		if opts.Runs == 0 {
			opts.Runs = 2
		}
	}
	if len(scens) == 0 {
		log.Fatal("no scenarios selected")
	}
	if *verbose {
		opts.Progress = func(r report.BenchRow) {
			if r.Skipped != "" {
				fmt.Printf("%-24s %-10s skipped (%s)\n", r.Scenario, r.Strategy, r.Skipped)
				return
			}
			fmt.Printf("%-24s %-10s cost %.4f  best %.3f ms  %d evals  %.0f evals/s  %.0f ms\n",
				r.Scenario, r.Strategy, r.BestCost, r.BestMakespanMS, r.Evaluations, r.EvalsPerSec, r.WallMS)
		}
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	rows, runErr := scenario.RunMatrix(ctx, scens, opts)
	// RunMatrix returns the completed cells alongside a cancellation or
	// per-cell error; persist and render what finished before failing, so
	// an interrupted overnight matrix is not thrown away.
	if runErr != nil {
		if len(rows) == 0 {
			log.Fatal(runErr)
		}
		log.Printf("stopping after %d completed cell(s): %v", len(rows), runErr)
	}

	file := &report.BenchFile{
		Tool: "dsebench",
		Params: map[string]string{
			"strategies": *strategies,
			"smoke":      fmt.Sprint(*smoke),
			"seed":       fmt.Sprint(*seed),
			"cache":      fmt.Sprint(*cacheOn),
		},
		Results: rows,
	}
	if *batch > 1 {
		file.Params["batch"] = fmt.Sprint(*batch)
		file.Params["batchKernel"] = kernel.String()
	}
	if *earlyStop > 0 {
		file.Params["earlyStop"] = fmt.Sprintf("%g/%d", *earlyStop, *earlyStopW)
	}
	if *schedPol != "" {
		file.Params["sched"] = *schedPol
	}
	if *schedSlice > 0 {
		file.Params["schedSlice"] = fmt.Sprint(*schedSlice)
	}
	if *transfer {
		file.Params["transfer"] = "true"
	}
	fmt.Println()
	if err := report.BenchTable(file).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	// out is what -json persists and -baseline gates: this invocation's
	// rows, or — with -append — the whole merged file, so a matrix
	// assembled in slices is gated as one unit by its final slice.
	out := file
	if *jsonPath != "" {
		if *appendJSON {
			if prev, err := report.LoadBench(*jsonPath); err == nil {
				// Merge: this invocation's rows replace same-key rows of the
				// existing file and append after the rest, so re-running a
				// slice updates it in place.
				fresh := make(map[string]bool, len(rows))
				for i := range rows {
					fresh[rows[i].Key()] = true
				}
				merged := prev
				kept := merged.Results[:0]
				for _, r := range merged.Results {
					if !fresh[r.Key()] {
						kept = append(kept, r)
					}
				}
				merged.Results = append(kept, rows...)
				for k, v := range file.Params {
					if merged.Params == nil {
						merged.Params = map[string]string{}
					}
					merged.Params[k] = v
				}
				out = merged
			} else if !os.IsNotExist(err) {
				log.Fatal(err)
			}
		}
		if err := report.SaveBench(*jsonPath, out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d cells)\n", *jsonPath, len(out.Results))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.BenchTable(file).CSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if runErr != nil {
		// Partial results persisted above; a truncated matrix must not be
		// baseline-gated (missing cells would read as regressions).
		os.Exit(1)
	}

	if *baseline != "" {
		base, err := report.LoadBench(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		regs := report.CompareBench(base, out, *threshold)
		if len(regs) > 0 {
			fmt.Printf("\n%d regression(s) vs %s (threshold %.0f%%):\n", len(regs), *baseline, *threshold*100)
			for _, r := range regs {
				fmt.Println("  " + r.String())
			}
			os.Exit(3)
		}
		gated := 0
		for _, r := range base.Results {
			if r.Skipped == "" {
				gated++
			}
		}
		fmt.Printf("\nno regressions vs %s (threshold %.0f%%, %d gated cells)\n",
			*baseline, *threshold*100, gated)
	}
	if *schedGate > 0 {
		g, ok := report.CompareSched(out, "bandit", "portfolio", *schedGate)
		if !ok {
			fmt.Printf("\nsched gate FAILED (bandit vs portfolio, tolerance %.0f%%): %d/%d wins",
				*schedGate*100, g.Wins, g.Cells)
			if g.Cells == 0 {
				fmt.Print(" — no comparable cells (run both strategies)")
			}
			fmt.Println()
			for _, v := range g.Violations {
				fmt.Println("  " + v.String())
			}
			os.Exit(3)
		}
		fmt.Printf("\nsched gate ok: bandit matched or beat portfolio on %d/%d scenario(s), none worse than %.0f%%\n",
			g.Wins, g.Cells, *schedGate*100)
	}
}

// printCatalog renders the registered corpus, instantiating each scenario
// for its task/resource counts.
func printCatalog() {
	tb := report.NewTable("name", "family", "size", "tasks", "arch", "deadline", "runs", "stresses")
	for _, s := range scenario.All() {
		app, arch, err := s.Instantiate()
		if err != nil {
			log.Fatal(err)
		}
		deadline := "-"
		if s.DeadlineMS > 0 {
			deadline = fmt.Sprintf("%.0f ms", s.DeadlineMS)
		}
		shape := fmt.Sprintf("%dp+%drc", len(arch.Processors), len(arch.RCs))
		tb.AddRow(s.Name, s.Family, s.Size.String(), app.N(), shape, deadline, s.Budget.Runs, s.Stresses)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d scenarios in %d families: %s\n",
		len(scenario.Names()), len(scenario.Families()), strings.Join(scenario.Families(), ", "))
}
