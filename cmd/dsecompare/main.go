// Command dsecompare reproduces the paper's comparison against the genetic
// algorithm of Ben Chehida & Auguin [6]: solution quality (execution time
// of the best mapping found) and optimizer runtime on the motion-detection
// application. The paper reports that the annealer beats the GA's 28 ms
// best and runs in under 10 s versus 4 minutes — an order of magnitude
// faster even at equal population.
//
// Both batches fan their independent runs out over -j workers through the
// multi-run engine; the wall_per_run column stays the honest single-run
// cost (total wall × workers / runs is an approximation under parallelism,
// so the table reports aggregate wall time and the run count explicitly).
//
// Usage:
//
//	dsecompare [-nclb 2000] [-sa-runs 10] [-ga-pop 300] [-ga-gens 120] [-j 8]
//	dsecompare -front front.csv      # dump the cross-run Pareto front as CSV
//	dsecompare -cache                # memoize runs (identical reruns hit the cache)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/objective"
	"repro/internal/report"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsecompare: ")
	var (
		nclb     = flag.Int("nclb", 2000, "FPGA capacity in CLBs")
		saRuns   = flag.Int("sa-runs", 10, "annealing runs (best/average reported)")
		saIter   = flag.Int("sa-iters", 5000, "annealing iterations per run")
		gaPop    = flag.Int("ga-pop", 300, "GA population (paper: 300)")
		gaGens   = flag.Int("ga-gens", 120, "GA generations")
		gaRuns   = flag.Int("ga-runs", 3, "GA runs (best/average reported)")
		workers  = flag.Int("j", runtime.NumCPU(), "parallel runs per method")
		frontCSV = flag.String("front", "", "write the cross-run area/makespan Pareto front to this CSV file")
		cacheOn  = flag.Bool("cache", false, "memoize run outcomes (identical reruns of either method become cache hits)")
	)
	flag.Parse()

	var cache *runner.ResultCache
	if *cacheOn {
		cache = runner.NewResultCache(0, 0)
	}

	mcfg := apps.DefaultMotionConfig()
	app := apps.MotionDetection(mcfg)
	arch := apps.MotionArch(*nclb, mcfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("SA vs GA on %q, FPGA %d CLBs (deadline 40 ms, all-SW %v, %d workers)\n\n",
		app.Name, *nclb, app.TotalSW(), *workers)

	// Simulated annealing (this paper). The runs collect the in-run
	// area/makespan fronts, merged across runs by the engine.
	saCfg := core.DefaultConfig()
	saCfg.MaxIters = *saIter
	saCfg.Deadline = apps.MotionDeadline
	saCfg.FrontMetrics = []objective.Metric{objective.HWArea, objective.Makespan}
	saFn, err := runner.WithCache(runner.CacheConfig{Cache: cache, SA: &saCfg, App: app, Arch: arch})
	if err != nil {
		log.Fatal(err)
	}
	saStart := time.Now()
	saAgg, err := runner.Run(ctx, app, runner.Options{Runs: *saRuns, Workers: *workers}, saFn)
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	saWall := time.Since(saStart)

	// Genetic algorithm baseline [6].
	gaCfg := ga.DefaultConfig()
	gaCfg.Population = *gaPop
	gaCfg.Generations = *gaGens
	gaFn, err := runner.WithCache(runner.CacheConfig{Cache: cache, GA: &gaCfg, GADeadline: apps.MotionDeadline, App: app, Arch: arch})
	if err != nil {
		log.Fatal(err)
	}
	gaStart := time.Now()
	gaAgg, err := runner.Run(ctx, app, runner.Options{Runs: *gaRuns, Workers: *workers}, gaFn)
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	gaWall := time.Since(gaStart)

	if ctx.Err() != nil {
		if saAgg.Completed == 0 {
			log.Fatal("interrupted before any run completed")
		}
		fmt.Println("interrupted — showing completed runs")
	}

	tb := report.NewTable("method", "best_ms", "avg_ms", "runs", "total_wall", "wall_per_run")
	addRow := func(name string, agg *runner.Aggregate, wall time.Duration) {
		n := agg.Completed
		if n == 0 {
			n = 1
		}
		tb.AddRow(name, agg.MakespanMS.Min(), agg.MakespanMS.Mean(),
			agg.Completed, wall.Round(time.Millisecond).String(),
			(wall / time.Duration(n)).Round(time.Millisecond).String())
	}
	addRow("adaptive SA (this paper)", saAgg, saWall)
	addRow(fmt.Sprintf("GA [6] pop=%d", *gaPop), gaAgg, gaWall)
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Printf("\nresult cache: %d hits, %d misses, %d resident (SA %d + GA %d cached runs)\n",
			st.Hits, st.Misses, st.Entries, saAgg.CacheHits, gaAgg.CacheHits)
	}

	if saAgg.Completed > 0 && gaAgg.Completed > 0 {
		saBest := saAgg.BestEval.Makespan
		gaBest := gaAgg.BestEval.Makespan
		fmt.Printf("\nSA best %v (run %d) vs GA best %v (run %d) — SA better: %v (paper: 18.1 ms vs 28 ms)\n",
			saBest, saAgg.BestRun, gaBest, gaAgg.BestRun, saBest < gaBest)
		perSA := saWall / time.Duration(saAgg.Completed)
		perGA := gaWall / time.Duration(gaAgg.Completed)
		if perSA > 0 {
			fmt.Printf("speed ratio (GA/SA per run): %.1f× (paper: ≥24×, ≥an order of magnitude)\n",
				float64(perGA)/float64(perSA))
		}
	}
	if *frontCSV != "" && saAgg.Front != nil {
		f, err := os.Create(*frontCSV)
		if err != nil {
			log.Fatal(err)
		}
		ftb := report.NewTable("clbs", "makespan_ms", "run")
		for _, p := range saAgg.Front.Points() {
			ftb.AddRow(int(p.V[0]), p.V[1], p.ID)
		}
		if err := ftb.CSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncross-run Pareto front (%d points) written to %s\n", saAgg.Front.Len(), *frontCSV)
	}
	if pts := saAgg.Archive.Points(); len(pts) > 1 {
		fmt.Println("\nSA cross-run area/time Pareto archive (occupied CLBs vs execution time):")
		atb := report.NewTable("clbs", "exec", "run")
		for _, p := range pts {
			atb.AddRow(p.Impl.CLBs, p.Impl.Time.String(), p.ID)
		}
		if err := atb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
