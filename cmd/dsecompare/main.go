// Command dsecompare reproduces the paper's comparison against the genetic
// algorithm of Ben Chehida & Auguin [6]: solution quality (execution time
// of the best mapping found) and optimizer runtime on the motion-detection
// application. The paper reports that the annealer beats the GA's 28 ms
// best and runs in under 10 s versus 4 minutes — an order of magnitude
// faster even at equal population.
//
// Usage:
//
//	dsecompare [-nclb 2000] [-sa-runs 10] [-ga-pop 300] [-ga-gens 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/model"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsecompare: ")
	var (
		nclb   = flag.Int("nclb", 2000, "FPGA capacity in CLBs")
		saRuns = flag.Int("sa-runs", 10, "annealing runs (best/average reported)")
		saIter = flag.Int("sa-iters", 5000, "annealing iterations per run")
		gaPop  = flag.Int("ga-pop", 300, "GA population (paper: 300)")
		gaGens = flag.Int("ga-gens", 120, "GA generations")
		gaRuns = flag.Int("ga-runs", 3, "GA runs (best/average reported)")
	)
	flag.Parse()

	mcfg := apps.DefaultMotionConfig()
	app := apps.MotionDetection(mcfg)
	arch := apps.MotionArch(*nclb, mcfg)

	fmt.Printf("SA vs GA on %q, FPGA %d CLBs (deadline 40 ms, all-SW %v)\n\n",
		app.Name, *nclb, app.TotalSW())

	// Simulated annealing (this paper).
	saStart := time.Now()
	saBest := model.Time(1 << 62)
	var saSum model.Time
	for s := 0; s < *saRuns; s++ {
		cfg := core.DefaultConfig()
		cfg.Seed = int64(s)
		cfg.MaxIters = *saIter
		cfg.Deadline = apps.MotionDeadline
		res, err := core.Explore(app, arch, cfg)
		if err != nil {
			log.Fatal(err)
		}
		saSum += res.BestEval.Makespan
		if res.BestEval.Makespan < saBest {
			saBest = res.BestEval.Makespan
		}
	}
	saWall := time.Since(saStart)

	// Genetic algorithm baseline [6].
	gaStart := time.Now()
	gaBest := model.Time(1 << 62)
	var gaSum model.Time
	for s := 0; s < *gaRuns; s++ {
		gcfg := ga.DefaultConfig()
		gcfg.Population = *gaPop
		gcfg.Generations = *gaGens
		gcfg.Seed = int64(s)
		res, err := ga.Explore(app, arch, gcfg)
		if err != nil {
			log.Fatal(err)
		}
		gaSum += res.BestEval.Makespan
		if res.BestEval.Makespan < gaBest {
			gaBest = res.BestEval.Makespan
		}
	}
	gaWall := time.Since(gaStart)

	tb := report.NewTable("method", "best_ms", "avg_ms", "runs", "total_wall", "wall_per_run")
	tb.AddRow("adaptive SA (this paper)", saBest.Millis(), (saSum / model.Time(*saRuns)).Millis(),
		*saRuns, saWall.Round(time.Millisecond).String(), (saWall / time.Duration(*saRuns)).Round(time.Millisecond).String())
	tb.AddRow(fmt.Sprintf("GA [6] pop=%d", *gaPop), gaBest.Millis(), (gaSum / model.Time(*gaRuns)).Millis(),
		*gaRuns, gaWall.Round(time.Millisecond).String(), (gaWall / time.Duration(*gaRuns)).Round(time.Millisecond).String())
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	perSA := saWall / time.Duration(*saRuns)
	perGA := gaWall / time.Duration(*gaRuns)
	fmt.Printf("\nSA best %v vs GA best %v — SA better: %v (paper: 18.1 ms vs 28 ms)\n",
		saBest, gaBest, saBest < gaBest)
	if perSA > 0 {
		fmt.Printf("speed ratio (GA/SA per run): %.1f× (paper: ≥24×, ≥an order of magnitude)\n",
			float64(perGA)/float64(perSA))
	}
}
