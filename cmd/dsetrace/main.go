// Command dsetrace regenerates Figure 2 of the paper: the evolution of the
// execution time and of the number of FPGA contexts during one annealing
// run on the motion-detection application (2000-CLB device, ~1200
// infinite-temperature iterations, 5000 iterations total).
//
// With -strategy portfolio or -strategy bandit the run goes through the
// composite scheduler instead, and the report is the per-arm budget
// table — slices, steps and accumulated reward per member strategy,
// plus the policy ("rr" round-robin or "ucb" deterministic UCB1) and,
// when the run was transfer-seeded, the donor key and incumbent cost.
//
// Usage:
//
//	dsetrace [-nclb 2000] [-iters 5000] [-warmup 1200] [-seed 1]
//	         [-quality 0.05] [-csv trace.csv] [-noplot]
//	dsetrace -strategy bandit [-sched ucb] [-sched-slice 8] [-max-steps 400]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/search"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsetrace: ")
	var (
		nclb    = flag.Int("nclb", 2000, "FPGA capacity in CLBs")
		iters   = flag.Int("iters", 5000, "annealing iterations")
		warmup  = flag.Int("warmup", 1200, "infinite-temperature warmup iterations")
		seed    = flag.Int64("seed", 1, "random seed")
		quality = flag.Float64("quality", 0.05, "Lam schedule quality (λ)")
		csvPath = flag.String("csv", "", "write the per-iteration trace to this CSV file")
		noplot  = flag.Bool("noplot", false, "suppress the ASCII plots")
		splits  = flag.Bool("splits", false, "enable the context-splitting extension move")

		strategy   = flag.String("strategy", "sa", "sa traces one annealing run (the paper figure); portfolio/bandit print the scheduler arm table instead")
		schedPol   = flag.String("sched", "", "composite-strategy scheduling policy: rr or ucb (empty = the kind's default)")
		schedSlice = flag.Int("sched-slice", 0, "UCB budget-slice length in driver steps (0 = engine default)")
		maxSteps   = flag.Int("max-steps", 0, "cap driver steps of the composite run (0 = to exhaustion)")
	)
	flag.Parse()

	mcfg := apps.DefaultMotionConfig()
	app := apps.MotionDetection(mcfg)
	arch := apps.MotionArch(*nclb, mcfg)

	cfg := core.DefaultConfig()
	cfg.MaxIters = *iters
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.Quality = *quality
	cfg.Deadline = apps.MotionDeadline
	cfg.EnableCtxSplit = *splits

	if *strategy != "sa" {
		traceScheduler(app, arch, cfg, *strategy, *schedPol, *schedSlice, *seed, *maxSteps)
		return
	}

	var its, ctxs, exec []float64
	cfg.Trace = func(p core.TracePoint) {
		its = append(its, float64(p.Iter))
		exec = append(exec, p.Makespan.Millis())
		ctxs = append(ctxs, float64(p.Contexts))
	}

	start := time.Now()
	res, err := core.Explore(app, arch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("Figure 2 — typical run on %q, FPGA %d CLBs\n\n", app.Name, *nclb)
	fmt.Printf("  all-software execution time : %v (paper: 76.4 ms)\n", app.TotalSW())
	fmt.Printf("  initial random solution     : %v (paper: 67.9 ms)\n", res.InitialEval.Makespan)
	fmt.Printf("  final best execution time   : %v (paper: 18.1 ms)\n", res.BestEval.Makespan)
	fmt.Printf("  final contexts              : %d (paper: 3)\n", res.BestEval.Contexts)
	fmt.Printf("  40 ms constraint met        : %v\n", res.MetDeadline)
	fmt.Printf("  breakdown: sw=%v hw=%v comm=%v reconfig(init)=%v reconfig(dyn)=%v\n",
		res.BestEval.ComputeSW, res.BestEval.ComputeHW, res.BestEval.Comm,
		res.BestEval.InitialReconfig, res.BestEval.DynamicReconfig)
	fmt.Printf("  iterations=%d accepted=%d rejected=%d infeasible=%d wall=%v (paper: <10 s)\n\n",
		res.Stats.Iters, res.Stats.Accepted, res.Stats.Rejected, res.Stats.Infeasible, elapsed.Round(time.Millisecond))

	fmt.Println("move mix (proposed / accepted per kind):")
	mt := report.NewTable("move", "proposed", "accepted", "accept_rate")
	for k := 0; k < core.NumMoveKinds; k++ {
		prop, acc := res.MoveStats.Proposed[k], res.MoveStats.Accepted[k]
		if prop == 0 && acc == 0 {
			continue
		}
		rate := "-"
		if prop > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(acc)/float64(prop))
		}
		mt.AddRow(core.MoveKindName(k), prop, acc, rate)
	}
	if err := mt.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	if !*noplot && len(its) > 0 {
		fmt.Println("execution time (ms) vs iteration:")
		if err := report.Plot(os.Stdout, 78, 16, report.Series{Name: "execution time (ms)", X: its, Y: exec}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nnumber of contexts vs iteration:")
		if err := report.Plot(os.Stdout, 78, 10, report.Series{Name: "contexts", X: its, Y: ctxs}); err != nil {
			log.Fatal(err)
		}
	}

	if *csvPath != "" {
		tb := report.NewTable("iteration", "execution_ms", "contexts")
		for i := range its {
			tb.AddRow(int(its[i]), exec[i], int(ctxs[i]))
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tb.CSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *csvPath)
	}
}

// traceScheduler drives one non-sa strategy run through the unified
// engine and reports the composite scheduler's per-arm budget
// accounting (nothing to report for plain single strategies).
func traceScheduler(app *model.App, arch *model.Arch, saCfg core.Config, name, policy string, slice int, seed int64, maxSteps int) {
	scfg := search.DefaultConfig()
	scfg.SA = saCfg
	scfg.Sched = policy
	scfg.SchedSlice = slice
	factory, err := search.NewFactory(name, app, arch, scfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, st, err := search.RunStats(context.Background(), factory, seed, maxSteps)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("strategy %s: %q on %q\n\n", name, app.Name, arch.Name)
	fmt.Printf("  best execution time   : %v (cost %.4f)\n", out.Eval.Makespan, out.Cost)
	fmt.Printf("  %v constraint met  : %v\n", saCfg.Deadline, out.MetDeadline)
	fmt.Printf("  driver steps          : %d (%d evaluations, wall %v)\n\n",
		st.Steps, st.Evaluations, elapsed.Round(time.Millisecond))

	if st.Sched == nil {
		fmt.Printf("strategy %s reports no scheduler telemetry (not a composite)\n", name)
		return
	}
	head := fmt.Sprintf("scheduler policy %s", st.Sched.Policy)
	if st.Sched.Slice > 0 {
		head += fmt.Sprintf(", slice %d steps", st.Sched.Slice)
	}
	fmt.Println(head + " — per-arm budget accounting:")
	tb := report.NewTable("arm", "slices", "steps", "reward", "mean_reward")
	for _, a := range st.Sched.Arms {
		mean := "-"
		if a.Slices > 0 {
			mean = fmt.Sprintf("%.4f", a.Reward/float64(a.Slices))
		}
		tb.AddRow(a.Name, a.Slices, a.Steps, fmt.Sprintf("%.4f", a.Reward), mean)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if st.Sched.TransferKey != "" {
		fmt.Printf("\ntransfer donor %s (incumbent cost %.4f)\n", st.Sched.TransferKey, st.Sched.TransferCost)
	}
}
