// Command quickstart is the smallest end-to-end exploration: describe a four-stage processing pipeline, a processor+FPGA
// architecture, and let the explorer find a mapping. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/dse"
)

func main() {
	// A small pipeline: capture -> filter -> detect -> encode, with an
	// area/time trade-off for every hardware-capable stage.
	app := &dse.App{
		Name: "pipeline",
		Tasks: []dse.Task{
			{Name: "capture", SW: dse.FromMillis(2)},
			{Name: "filter", SW: dse.FromMillis(12), HW: []dse.Impl{
				{CLBs: 150, Time: dse.FromMillis(1.5)},
				{CLBs: 300, Time: dse.FromMillis(0.8)},
			}},
			{Name: "detect", SW: dse.FromMillis(9), HW: []dse.Impl{
				{CLBs: 200, Time: dse.FromMillis(1.2)},
			}},
			{Name: "encode", SW: dse.FromMillis(4)},
		},
		Flows: []dse.Flow{
			{From: 0, To: 1, Qty: 64 * 1024},
			{From: 1, To: 2, Qty: 64 * 1024},
			{From: 2, To: 3, Qty: 16 * 1024},
		},
	}

	arch := &dse.Arch{
		Name:       "cpu+fpga",
		Processors: []dse.Processor{{Name: "cpu"}},
		RCs: []dse.RC{{
			Name: "fpga",
			NCLB: 400,
			TR:   dse.FromMicros(22.5), // per-CLB reconfiguration time
		}},
		Bus: dse.Bus{Rate: 100_000_000, Contention: true},
	}

	opts := dse.DefaultOptions()
	opts.MaxIters = 3000
	opts.Deadline = dse.FromMillis(15)

	res, err := dse.Explore(app, arch, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("all-software time : %v\n", app.TotalSW())
	fmt.Printf("best mapping      : %v (deadline 15ms met: %v)\n",
		res.BestEval.Makespan, res.MetDeadline)
	fmt.Printf("contexts          : %d\n", res.BestEval.Contexts)
	for t, pl := range res.Best.Assign {
		where := "cpu"
		if pl.Kind == dse.KindRC {
			impl := app.Tasks[t].HW[res.Best.Impl[t]]
			where = fmt.Sprintf("fpga ctx%d (%d CLBs, %v)", pl.Ctx, impl.CLBs, impl.Time)
		}
		fmt.Printf("  %-8s -> %s\n", app.Tasks[t].Name, where)
	}
}
