// Command archexplore demonstrates architecture exploration (moves m3/m4
// of the paper): instead of fixing
// the platform, give the explorer a template of candidate resources with
// costs and let it minimize system cost subject to the real-time
// constraint. Unused template resources cost nothing — removing a resource
// (m3) empties it, creating one (m4) populates it. Run with:
//
//	go run ./examples/archexplore
package main

import (
	"fmt"
	"log"

	"repro/dse"
)

func main() {
	app := dse.MotionDetection()

	// Candidate platform: two processors, a large and a small FPGA, and an
	// ASIC, each with a cost. The explorer chooses which to instantiate.
	arch := &dse.Arch{
		Name: "candidate-template",
		Processors: []dse.Processor{
			{Name: "arm922-a", Cost: 10},
			{Name: "arm922-b", Cost: 10},
		},
		RCs: []dse.RC{
			{Name: "virtex-2000", NCLB: 2000, TR: dse.FromMicros(22.5), Cost: 25},
			{Name: "virtex-800", NCLB: 800, TR: dse.FromMicros(22.5), Cost: 12},
		},
		ASICs: []dse.ASIC{{Name: "labeling-asic", Cost: 40}},
		Bus:   dse.Bus{Rate: 80_000_000, Contention: true},
	}

	opts := dse.DefaultOptions()
	opts.ExploreArch = true
	opts.Deadline = dse.MotionDeadline
	opts.PenaltyWeight = 50 // cost units per ms of constraint violation
	opts.MaxIters = 8000
	opts.Warmup = 1500

	res, err := dse.Explore(app, arch, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("architecture exploration under a %v constraint\n\n", dse.MotionDeadline)
	fmt.Printf("  best execution time: %v (met: %v)\n", res.BestEval.Makespan, res.MetDeadline)
	fmt.Printf("  final cost (used resources + any penalty): %.1f\n\n", res.Stats.BestCost)

	// Which template resources did the final architecture instantiate?
	usedProc := map[int]int{}
	usedRC := map[int]int{}
	usedASIC := map[int]int{}
	for _, pl := range res.Best.Assign {
		switch pl.Kind {
		case dse.KindProcessor:
			usedProc[pl.Res]++
		case dse.KindRC:
			usedRC[pl.Res]++
		case dse.KindASIC:
			usedASIC[pl.Res]++
		}
	}
	fmt.Println("instantiated resources:")
	for i, p := range arch.Processors {
		if n := usedProc[i]; n > 0 {
			fmt.Printf("  %-12s cost %4.1f  %2d tasks\n", p.Name, p.Cost, n)
		}
	}
	for i, r := range arch.RCs {
		if n := usedRC[i]; n > 0 {
			fmt.Printf("  %-12s cost %4.1f  %2d tasks in %d contexts\n",
				r.Name, r.Cost, n, res.Best.NumContexts(i))
		}
	}
	for i, a := range arch.ASICs {
		if n := usedASIC[i]; n > 0 {
			fmt.Printf("  %-12s cost %4.1f  %2d tasks\n", a.Name, a.Cost, n)
		}
	}
}
