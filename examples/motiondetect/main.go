// Command motiondetect reproduces the paper's Section 5 experiment: map the 28-task motion-detection
// application (all-software 76.4 ms, real-time constraint 40 ms/image) onto
// an ARM922-class processor plus a 2000-CLB Virtex-E-class FPGA with
// tR = 22.5 µs/CLB. Run with:
//
//	go run ./examples/motiondetect
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dse"
)

func main() {
	app := dse.MotionDetection()
	arch := dse.MotionArch(2000)

	opts := dse.DefaultOptions()
	opts.Deadline = dse.MotionDeadline
	opts.Seed = 3

	start := time.Now()
	res, err := dse.Explore(app, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	b := res.BestEval
	fmt.Printf("motion detection on %s\n", arch.Name)
	fmt.Printf("  all-software          : %v (must be < 40ms after acceleration)\n", app.TotalSW())
	fmt.Printf("  initial random mapping: %v\n", res.InitialEval.Makespan)
	fmt.Printf("  best mapping          : %v — constraint met: %v\n", b.Makespan, res.MetDeadline)
	fmt.Printf("  contexts              : %d\n", b.Contexts)
	fmt.Printf("  time breakdown        : sw %v, hw %v, bus %v, reconfig %v+%v\n",
		b.ComputeSW, b.ComputeHW, b.Comm, b.InitialReconfig, b.DynamicReconfig)
	fmt.Printf("  optimizer             : %d iterations in %v\n\n",
		res.Stats.Iters, elapsed.Round(time.Millisecond))

	// Which functions were pulled into hardware?
	fmt.Println("hardware-accelerated tasks:")
	for t, pl := range res.Best.Assign {
		if pl.Kind != dse.KindRC {
			continue
		}
		impl := app.Tasks[t].HW[res.Best.Impl[t]]
		fmt.Printf("  ctx%d  %-12s %4d CLBs  %8v (sw was %v)\n",
			pl.Ctx, app.Tasks[t].Name, impl.CLBs, impl.Time, app.Tasks[t].SW)
	}

	// The schedule, lane by lane.
	fmt.Println("\nschedule:")
	entries, err := dse.Gantt(app, arch, res.Best)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("  %-11s %9v – %-9v %s\n", e.Lane, e.Start, e.End, e.Label)
	}
}
