// Command multiobjective demonstrates multi-objective exploration
// through the unified strategy engine: weight
// the shared objective so the annealer trades hardware area against
// execution time, race several strategies in a portfolio, and print the
// area/makespan Pareto front the run discovered. Run with:
//
//	go run ./examples/multiobjective
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/dse"
	"repro/internal/report"
)

func main() {
	app := dse.MotionDetection()
	arch := dse.MotionArch(2000)

	// One objective for every strategy: the paper's makespan cost plus a
	// small price per occupied CLB, so cheaper mappings win ties and the
	// search keeps pressure on area as well as time.
	scal := dse.FixedArchObjective()
	scal.Weights[dse.MetricHWArea] = 0.001 // cost units per CLB

	opts := dse.DefaultSearchOptions()
	opts.Objective = &scal
	opts.FrontMetrics = []dse.Metric{dse.MetricHWArea, dse.MetricMakespan}
	opts.SA.Deadline = dse.MotionDeadline
	opts.GA.Population = 60
	opts.GA.Generations = 20

	// "portfolio" races sa, list seeding and the GA baseline under one
	// budget; any single name ("sa", "ga", "list", "brute") works too.
	out, err := dse.Search(context.Background(), "portfolio", app, arch, opts, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("best mapping: %v on %d CLBs (cost %.3f, deadline met: %v)\n\n",
		out.Eval.Makespan, int(out.Vector[dse.MetricHWArea]), out.Cost, out.MetDeadline)

	// The merged front of every strategy in the race, as CSV.
	fmt.Println("area/makespan Pareto front:")
	tb := report.NewTable("clbs", "makespan_ms")
	for _, p := range out.Front.Points() {
		tb.AddRow(int(p.V[0]), p.V[1])
	}
	if err := tb.CSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
