// Command sdfapp demonstrates the SDF front end (the paper's announced
// multiple-models-of-computation extension): describe a multirate digital front end as a synchronous-
// dataflow graph, expand one iteration into a precedence graph, and explore
// it. Run with:
//
//	go run ./examples/sdfapp
package main

import (
	"fmt"
	"log"

	"repro/dse"
)

func main() {
	hw := func(clbs int, us float64) []dse.Impl {
		return []dse.Impl{
			{CLBs: clbs, Time: dse.FromMicros(us)},
			{CLBs: clbs * 2, Time: dse.FromMicros(us / 2)},
		}
	}
	// A 1→4 upsampling chain with a decimating output stage:
	// source --1:1--> fir(×4 firings) --4:2--> mixer(×2) --2:1--> sink.
	g := &dse.SDFGraph{
		Name: "frontend",
		Actors: []dse.SDFActor{
			{Name: "source", SW: dse.FromMicros(400)},
			{Name: "fir", SW: dse.FromMicros(900), HW: hw(180, 60)},
			{Name: "mixer", SW: dse.FromMicros(700), HW: hw(140, 90)},
			{Name: "sink", SW: dse.FromMicros(300)},
		},
		Channels: []dse.SDFChannel{
			{From: 0, To: 1, Prod: 4, Cons: 1, TokenBytes: 256},
			{From: 1, To: 2, Prod: 2, Cons: 4, TokenBytes: 256},
			{From: 2, To: 3, Prod: 1, Cons: 2, TokenBytes: 512},
		},
	}

	q, err := g.Repetitions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repetition vector: %v\n", q)

	app, err := g.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded: %d firings, %d dependencies, all-software %v\n",
		app.N(), len(app.Flows), app.TotalSW())

	arch := &dse.Arch{
		Name:       "dsp+fpga",
		Processors: []dse.Processor{{Name: "dsp"}},
		RCs:        []dse.RC{{Name: "fpga", NCLB: 600, TR: dse.FromMicros(22.5)}},
		Bus:        dse.Bus{Rate: 200_000_000, Contention: true},
	}
	opts := dse.DefaultOptions()
	opts.MaxIters = 4000
	res, err := dse.Explore(app, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best mapping: %v with %d contexts (from %v initial)\n",
		res.BestEval.Makespan, res.BestEval.Contexts, res.InitialEval.Makespan)
	for t, pl := range res.Best.Assign {
		if pl.Kind == dse.KindRC {
			fmt.Printf("  hw: %-8s ctx%d\n", app.Tasks[t].Name, pl.Ctx)
		}
	}
}
