// Command sizing asks the paper's Figure 3 question: how small an FPGA still
// meets the 40 ms constraint, and where does adding CLBs stop helping?
// This example runs a reduced sweep through the public API. Run with:
//
//	go run ./examples/sizing
package main

import (
	"fmt"
	"log"

	"repro/dse"
)

func main() {
	app := dse.MotionDetection()
	sizes := []int{100, 400, 800, 2000, 5000}
	const runs = 5

	fmt.Println("FPGA sizing for motion detection (40 ms budget):")
	fmt.Println()
	fmt.Printf("%8s  %12s  %12s  %9s  %s\n", "CLBs", "avg exec", "best exec", "contexts", "meets 40ms")

	smallest := 0
	for _, nclb := range sizes {
		arch := dse.MotionArch(nclb)
		var sum dse.Time
		best := dse.Time(1 << 62)
		met := 0
		ctxs := 0
		for seed := int64(0); seed < runs; seed++ {
			opts := dse.DefaultOptions()
			opts.Seed = seed
			opts.MaxIters = 4000
			opts.Deadline = dse.MotionDeadline
			res, err := dse.Explore(app, arch, opts)
			if err != nil {
				log.Fatal(err)
			}
			sum += res.BestEval.Makespan
			if res.BestEval.Makespan < best {
				best = res.BestEval.Makespan
			}
			if res.MetDeadline {
				met++
			}
			ctxs += res.BestEval.Contexts
		}
		fmt.Printf("%8d  %12v  %12v  %9.1f  %d/%d\n",
			nclb, sum/runs, best, float64(ctxs)/runs, met, runs)
		if smallest == 0 && met > runs/2 {
			smallest = nclb
		}
	}
	if smallest > 0 {
		fmt.Printf("\nsmallest device meeting the constraint on most runs: %d CLBs\n", smallest)
	} else {
		fmt.Println("\nno device in the sweep reliably met the constraint")
	}
}
