# Developer entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI runs cannot drift apart.

GO ?= go
BENCH_JSON ?= BENCH_PR10.json
BENCH_MICRO_JSON ?= BENCH_MICRO.json
BENCH_BASELINE ?= bench/BENCH_BASELINE.json
BENCH_THRESHOLD ?= 0.20
# Bandit-vs-portfolio gate: both composites run the smoke corpus on the
# same fixed step budget (the cap makes the slice allocation bind —
# uncapped, every member runs to exhaustion and the comparison is
# vacuous). The gate requires bandit to match or beat portfolio's best
# cost on at least half the scenarios and never be >$(SCHED_GATE) worse.
SCHED_STEPS ?= 120
SCHED_GATE ?= 0.05
# Speculative batch width and scoring backend of the bench-batch-smoke
# leg (CI runs batch=1, batch=8 shadow, and batch=8 lanes).
BATCH ?= 8
BATCH_KERNEL ?= auto

.PHONY: all build test race bench bench-json bench-check bench-baseline bench-batch-smoke bench-diff bench-micro-json dsed-smoke fleet-smoke fleet-report docs-check fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once. Catches rotted
# benchmark code without paying for a full measurement run.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Scenario macro-benchmarks, assembled in two slices: the smoke corpus
# (tiny/small scenarios, sa+list; -cache reruns every cell cache-warm and
# verifies the warm pass bit-identical, recording warm_ms/hits) plus the
# layered-xl SA cell — the cold-throughput pin of the hot-loop perf work.
# Per-cell best cost / front size / evals/s land in $(BENCH_JSON), which
# CI uploads as an artifact so the trajectory accumulates per commit.
bench-json:
	$(GO) run ./cmd/dsebench -smoke -cache -json $(BENCH_JSON)
	$(GO) run ./cmd/dsebench -scenarios layered-xl -strategies sa -json $(BENCH_JSON) -append
	$(GO) run ./cmd/dsebench -smoke -strategies portfolio,bandit -max-steps $(SCHED_STEPS) \
		-sched-gate $(SCHED_GATE) -json $(BENCH_JSON) -append

# The CI regression gate: the same two slices under the race detector,
# with the final (appending) slice comparing the whole merged matrix
# against the committed baseline. Gated per cell: best cost (quality) and
# evals/s (throughput), each at $(BENCH_THRESHOLD) relative worsening;
# exits 3 on any regression. The throughput gate only makes sense
# like-for-like, which is why the baseline below is also race-built.
bench-check:
	$(GO) run -race ./cmd/dsebench -smoke -cache -json $(BENCH_JSON)
	$(GO) run -race ./cmd/dsebench -scenarios layered-xl -strategies sa -json $(BENCH_JSON) -append \
		-baseline $(BENCH_BASELINE) -threshold $(BENCH_THRESHOLD)
	$(GO) run -race ./cmd/dsebench -smoke -strategies portfolio,bandit -max-steps $(SCHED_STEPS) \
		-sched-gate $(SCHED_GATE) -json $(BENCH_JSON) -append

# Regenerate the committed baseline after an intentional quality or speed
# change (new scenarios, retuned budgets, algorithm work). Must mirror
# bench-check's flags exactly — same race detector, same cache mode — or
# the evals/s gate compares incommensurable numbers. Commit the resulting
# file together with the change that explains it.
bench-baseline:
	$(GO) run -race ./cmd/dsebench -smoke -cache -json $(BENCH_BASELINE)
	$(GO) run -race ./cmd/dsebench -scenarios layered-xl -strategies sa -json $(BENCH_BASELINE) -append

# The batched-speculation smoke: two scenarios through the SA hot loop at
# speculative batch width $(BATCH), scored by the $(BATCH_KERNEL) batch
# kernel, under the race detector. CI runs serial batch=1 plus batch=8
# with each scoring backend (shadow and lanes) as a matrix. The scenario
# pair spans both evaluation paths: layered-small resolves to the full
# rebuild (where `lanes` falls back to shadows, racing the fallback),
# layered-large to the incremental path (racing the lane kernel itself).
# Each leg writes a pprof CPU profile so a perf regression in any code
# path is diagnosable straight from the CI artifact.
bench-batch-smoke:
	$(GO) run -race ./cmd/dsebench -scenarios layered-small,layered-large -strategies sa \
		-batch $(BATCH) -batch-kernel $(BATCH_KERNEL) \
		-json BENCH_BATCH_$(BATCH)_$(BATCH_KERNEL).json -cpuprofile dsebench_batch$(BATCH)_$(BATCH_KERNEL).pprof

# Old-vs-new throughput report: per-cell evals/s and best-cost deltas
# between two dsebench result files, no gating. Defaults compare the
# committed baseline against this checkout's fresh $(BENCH_JSON) (run
# `make bench-json` or `make bench-check` first).
BENCH_DIFF_OLD ?= $(BENCH_BASELINE)
BENCH_DIFF_NEW ?= $(BENCH_JSON)
bench-diff:
	$(GO) run ./cmd/dsebench -diff $(BENCH_DIFF_OLD) $(BENCH_DIFF_NEW)

# Measured run of the key micro-benchmarks (the ones whose trajectory the
# perf PRs track), with allocation stats, as a test2json stream.
bench-micro-json:
	$(GO) test -run=NONE -benchmem -json \
		-bench='BenchmarkEvaluateMapping|BenchmarkSA$$|BenchmarkFig2TypicalRun|BenchmarkSAMotionEval|BenchmarkSALayered160Eval|BenchmarkEvalIncremental|BenchmarkEvalFull|BenchmarkExploreMany|BenchmarkPortfolio' \
		. > $(BENCH_MICRO_JSON)
	@grep -c '"Action":"output"' $(BENCH_MICRO_JSON) >/dev/null && echo "wrote $(BENCH_MICRO_JSON)"

# The dsed job-server self-test: serve on a loopback port, submit the
# fig2-small scenario, resubmit it, and assert the resubmission is
# answered from the memoized result cache with bit-identical quality
# fields; then snapshot the cache, boot a fresh server from the file (a
# simulated kill/restart), assert the resubmitted job is a pure cache
# hit, and scrape /v1/metrics for non-zero per-shard hit counters. This
# is the CI smoke for the serving layer.
dsed-smoke:
	$(GO) run ./cmd/dsed -smoke -snapshot /tmp/dsed-smoke.snap

# Distributed smoke: a race-built coordinator fronting three race-built
# workers, loaded by dseload with a two-pass (cold/warm) deterministic
# mixed-scenario replay. Asserts zero errors and a >=90% warm cache-hit
# ratio (the sharded-routing proof), leaves FLEET_SMOKE.json as the
# artifact. This is the CI gate of the fleet layer.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Fleet-vs-single comparison artifact: the identical deterministic
# replay against one dsed and against a 3-worker fleet, with per-pass
# result digests compared for bit-identity. Writes (and, on intentional
# serving-layer changes, recommits) bench/FLEET_PR9_single.json and
# bench/FLEET_PR9_fleet.json.
fleet-report:
	./scripts/fleet_report.sh

# Documentation lint: every package (library and command alike) must carry
# a package comment ("// Package x ..." or "// Command x ...").
docs-check:
	@fail=0; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		if ! grep -q -E '^// (Package|Command) ' $$d/*.go 2>/dev/null; then \
			echo "docs-check: no package comment in $$d"; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docs-check: every package documented"

fmt:
	gofmt -w .

# Fails (with the offending file list) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet docs-check build race bench bench-check dsed-smoke fleet-smoke
