# Developer entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI runs cannot drift apart.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once. Catches rotted
# benchmark code without paying for a full measurement run.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

# Fails (with the offending file list) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
