# Developer entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI runs cannot drift apart.

GO ?= go
BENCH_JSON ?= BENCH_PR5.json
BENCH_MICRO_JSON ?= BENCH_MICRO.json
BENCH_BASELINE ?= bench/BENCH_BASELINE.json
BENCH_THRESHOLD ?= 0.20

.PHONY: all build test race bench bench-json bench-check bench-baseline bench-micro-json dsed-smoke docs-check fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once. Catches rotted
# benchmark code without paying for a full measurement run.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Scenario macro-benchmarks: dsebench over the smoke corpus (tiny/small
# scenarios, sa+list), per-cell best cost / front size / evals/s into
# $(BENCH_JSON). -cache runs every cell cold and then cache-warm, so the
# file also records the cold-vs-warm cell times (warm_ms/hits) and the
# warm pass is verified bit-identical to the cold one. CI uploads the
# file as an artifact so the trajectory accumulates per commit.
bench-json:
	$(GO) run ./cmd/dsebench -smoke -cache -json $(BENCH_JSON)

# The CI regression gate: the same smoke matrix (including the cache-warm
# verification pass) under the race detector, compared against the
# committed baseline. Only the deterministic quality fields (best cost
# per cell) are gated; exits 3 on a >$(BENCH_THRESHOLD) relative
# regression.
bench-check:
	$(GO) run -race ./cmd/dsebench -smoke -cache -json $(BENCH_JSON) \
		-baseline $(BENCH_BASELINE) -threshold $(BENCH_THRESHOLD)

# Regenerate the committed baseline after an intentional quality change
# (new scenarios, retuned budgets, algorithm improvements). Commit the
# resulting file together with the change that explains it.
bench-baseline:
	$(GO) run ./cmd/dsebench -smoke -json $(BENCH_BASELINE)

# Measured run of the key micro-benchmarks (the ones whose trajectory the
# perf PRs track), with allocation stats, as a test2json stream.
bench-micro-json:
	$(GO) test -run=NONE -benchmem -json \
		-bench='BenchmarkEvaluateMapping|BenchmarkSA$$|BenchmarkFig2TypicalRun|BenchmarkSAMotionEval|BenchmarkSALayered160Eval|BenchmarkEvalIncremental|BenchmarkEvalFull|BenchmarkExploreMany|BenchmarkPortfolio' \
		. > $(BENCH_MICRO_JSON)
	@grep -c '"Action":"output"' $(BENCH_MICRO_JSON) >/dev/null && echo "wrote $(BENCH_MICRO_JSON)"

# The dsed job-server self-test: serve on a loopback port, submit the
# fig2-small scenario, resubmit it, and assert the resubmission is
# answered from the memoized result cache with bit-identical quality
# fields; then snapshot the cache, boot a fresh server from the file (a
# simulated kill/restart), assert the resubmitted job is a pure cache
# hit, and scrape /v1/metrics for non-zero per-shard hit counters. This
# is the CI smoke for the serving layer.
dsed-smoke:
	$(GO) run ./cmd/dsed -smoke -snapshot /tmp/dsed-smoke.snap

# Documentation lint: every package (library and command alike) must carry
# a package comment ("// Package x ..." or "// Command x ...").
docs-check:
	@fail=0; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		if ! grep -q -E '^// (Package|Command) ' $$d/*.go 2>/dev/null; then \
			echo "docs-check: no package comment in $$d"; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docs-check: every package documented"

fmt:
	gofmt -w .

# Fails (with the offending file list) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet docs-check build race bench bench-check dsed-smoke
