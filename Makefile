# Developer entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI runs cannot drift apart.

GO ?= go
BENCH_JSON ?= BENCH_PR3.json

.PHONY: all build test race bench bench-json fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: compile and run every benchmark exactly once. Catches rotted
# benchmark code without paying for a full measurement run.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Measured run of the key benchmarks (the ones whose trajectory the perf
# PRs track), with allocation stats, as a test2json stream. CI uploads the
# output as an artifact so the perf history accumulates per commit.
bench-json:
	$(GO) test -run=NONE -benchmem -json \
		-bench='BenchmarkEvaluateMapping|BenchmarkSA$$|BenchmarkFig2TypicalRun|BenchmarkSAMotionEval|BenchmarkSALayered160Eval|BenchmarkEvalIncremental|BenchmarkEvalFull|BenchmarkExploreMany|BenchmarkPortfolio' \
		. > $(BENCH_JSON)
	@grep -c '"Action":"output"' $(BENCH_JSON) >/dev/null && echo "wrote $(BENCH_JSON)"

fmt:
	gofmt -w .

# Fails (with the offending file list) when anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
